// Package netsim simulates the network-visible identity of a client:
// IP addresses with city-level geolocation, Tor exit nodes and open
// proxies that defeat geolocation, browser user agents and device
// classes, per-browser cookie identifiers, and a Spamhaus-style
// DNS blacklist.
//
// The paper's monitoring relies on exactly these observables. Google's
// activity page reports the login city (or nothing, for Tor exits and
// anonymous proxies, §4.5), an OS/browser fingerprint (§4.4), and a
// cookie identifier per browser session (§4.3); the authors then check
// the observed IPs against the Spamhaus blacklist (20 of them hit).
// netsim produces the same observables for simulated clients.
package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/rng"
)

// DeviceClass is the coarse device type the fingerprinting reports.
type DeviceClass int

const (
	// DeviceDesktop is a traditional computer.
	DeviceDesktop DeviceClass = iota
	// DeviceAndroid is a mobile device; the paper saw Android accesses
	// only on accounts leaked via paste sites and forums (§4.4).
	DeviceAndroid
	// DeviceUnknown is what an empty user agent fingerprints as; all
	// malware-outlet accesses looked like this (§4.4).
	DeviceUnknown
)

// String returns the device class label used in reports.
func (d DeviceClass) String() string {
	switch d {
	case DeviceDesktop:
		return "desktop"
	case DeviceAndroid:
		return "android"
	case DeviceUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// Browser identifies the browser family a user agent fingerprints as.
type Browser int

const (
	BrowserUnknown Browser = iota // empty or unparseable user agent
	BrowserChrome
	BrowserFirefox
	BrowserIE
	BrowserSafari
	BrowserOpera
	BrowserAndroid
)

// String returns the browser family label used in reports.
func (b Browser) String() string {
	switch b {
	case BrowserChrome:
		return "chrome"
	case BrowserFirefox:
		return "firefox"
	case BrowserIE:
		return "ie"
	case BrowserSafari:
		return "safari"
	case BrowserOpera:
		return "opera"
	case BrowserAndroid:
		return "android"
	case BrowserUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("browser(%d)", int(b))
	}
}

// userAgents maps browser families to representative UA strings; the
// exact string content is irrelevant to the analyses, only the family
// classification and emptiness are observable.
var userAgents = map[Browser][]string{
	BrowserChrome: {
		"Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/43.0.2357.130 Safari/537.36",
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2490.86 Safari/537.36",
		"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/45.0.2454.101 Safari/537.36",
	},
	BrowserFirefox: {
		"Mozilla/5.0 (Windows NT 6.1; WOW64; rv:40.0) Gecko/20100101 Firefox/40.0",
		"Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:41.0) Gecko/20100101 Firefox/41.0",
	},
	BrowserIE: {
		"Mozilla/5.0 (Windows NT 6.1; Trident/7.0; rv:11.0) like Gecko",
		"Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)",
	},
	BrowserSafari: {
		"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_5) AppleWebKit/600.8.9 (KHTML, like Gecko) Version/8.0.8 Safari/600.8.9",
	},
	BrowserOpera: {
		"Opera/9.80 (Windows NT 6.1; WOW64) Presto/2.12.388 Version/12.17",
	},
	BrowserAndroid: {
		"Mozilla/5.0 (Linux; Android 5.1; Nexus 5 Build/LMY47I) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/43.0.2357.78 Mobile Safari/537.36",
		"Mozilla/5.0 (Linux; Android 4.4.2; GT-I9505 Build/KOT49H) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/42.0.2311.111 Mobile Safari/537.36",
	},
}

// ClassifyUserAgent reproduces the fingerprinting the analyses depend
// on: an empty UA is unknown (malware accesses, §4.4), otherwise the
// browser family and device class are derived from the string.
func ClassifyUserAgent(ua string) (Browser, DeviceClass) {
	if ua == "" {
		return BrowserUnknown, DeviceUnknown
	}
	has := func(sub string) bool { return contains(ua, sub) }
	switch {
	case has("Android"):
		return BrowserAndroid, DeviceAndroid
	case has("Opera"):
		return BrowserOpera, DeviceDesktop
	case has("Firefox"):
		return BrowserFirefox, DeviceDesktop
	case has("Trident") || has("MSIE"):
		return BrowserIE, DeviceDesktop
	case has("Chrome"):
		return BrowserChrome, DeviceDesktop
	case has("Safari"):
		return BrowserSafari, DeviceDesktop
	default:
		return BrowserUnknown, DeviceDesktop
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// UserAgentFor returns a representative user agent for a browser
// family, or "" for BrowserUnknown (the malware empty-UA behaviour).
func UserAgentFor(s *rng.Source, b Browser) string {
	if b == BrowserUnknown {
		return ""
	}
	uas, ok := userAgents[b]
	if !ok {
		return ""
	}
	return rng.Pick(s, uas)
}

// Endpoint is the full network identity of one client access.
type Endpoint struct {
	Addr      netip.Addr
	City      string // "" when anonymised
	Country   string // "" when anonymised
	Point     geo.Point
	Tor       bool // Tor exit node
	Proxy     bool // open/anonymous proxy
	UserAgent string
}

// Anonymous reports whether geolocation is unavailable for this
// endpoint — Google told the authors such accesses were "mostly ...
// Tor exit nodes or anonymous proxies" (§4.5).
func (e Endpoint) Anonymous() bool { return e.Tor || e.Proxy }

// HasLocation reports whether the activity page would show a city.
func (e Endpoint) HasLocation() bool { return !e.Anonymous() && e.City != "" }

// AddressSpace deterministically allocates IPv4 addresses with
// city-level geolocation, plus Tor exit and open-proxy pools that
// geolocation cannot resolve. It is safe for concurrent use.
type AddressSpace struct {
	mu       sync.Mutex
	src      *rng.Source
	gaz      *geo.Gazetteer
	cityNet  map[string]netip.Addr // next address per city
	torNext  netip.Addr
	prxNext  netip.Addr
	assigned map[netip.Addr]string // addr -> city ("" for tor/proxy)
	torSet   map[netip.Addr]bool
	prxSet   map[netip.Addr]bool
}

// NewAddressSpace builds an address space over a gazetteer. Each city
// receives a disjoint /16-like range derived from its index; Tor and
// proxy pools live in dedicated ranges.
func NewAddressSpace(src *rng.Source, gaz *geo.Gazetteer) *AddressSpace {
	return NewAddressSpaceTenant(src, gaz, 0)
}

// v4Tenants is the number of tenants the IPv4 plane holds. Each of
// them shifts every pool base by tenant<<18 (a /14 per tenant): with
// 800 slots the top shift is ~12.5 in the first octet, so the city
// pool stays below 54.x, the Tor pool below 184.x and the proxy pool
// below 198.x — mutually disjoint — while a /14 still holds the whole
// per-tenant city layout (gazetteer cities occupy
// (1+i>>8)<<16 + (i&255)<<8, which fits for up to 767 cities).
const v4Tenants = 800

// TenantSlots bounds the number of disjoint tenant ranges. The first
// v4Tenants tenants keep their original IPv4 layout byte for byte (so
// paper-scale runs and their goldens never move); tenants beyond that
// overflow into the 2001:db8::/32 documentation prefix, where each
// tenant owns a /64 split into city/Tor/proxy pools — the fleet-scale
// plane that lets a plan expand to hundreds of thousands of blocks
// (ScaleFactor 1000 is 8000 blocks) without two attackers ever
// sharing an address.
const TenantSlots = 1 << 20

// NewAddressSpaceTenant builds an address space whose allocation
// ranges are disjoint from every other tenant's. The sharded
// experiment engine gives each plan block its own tenant so two
// attackers in different blocks can never be assigned the same IP —
// distinct criminals sharing an address would corrupt IP-keyed
// analyses (unique-IP counts, the Spamhaus cross-check of §4.5).
// Out-of-range tenants panic rather than silently wrap onto another
// tenant's ranges; size fleets against TenantSlots.
func NewAddressSpaceTenant(src *rng.Source, gaz *geo.Gazetteer, tenant int) *AddressSpace {
	if tenant < 0 || tenant >= TenantSlots {
		panic(fmt.Sprintf("netsim: tenant %d out of range [0,%d)", tenant, TenantSlots))
	}
	as := &AddressSpace{
		src:      src,
		gaz:      gaz,
		cityNet:  make(map[string]netip.Addr),
		assigned: make(map[netip.Addr]string),
		torSet:   make(map[netip.Addr]bool),
		prxSet:   make(map[netip.Addr]bool),
	}
	cities := gaz.Cities()
	sort.Slice(cities, func(i, j int) bool { return cities[i].Name < cities[j].Name })
	if tenant < v4Tenants {
		off := uint32(tenant) << 18
		for i, c := range cities {
			// Deterministic layout: city i of tenant t gets base
			// 41.(1+i>>8).(i&255).1 shifted by t<<18.
			base := addrShift(netip.AddrFrom4([4]byte{41, byte(1 + i>>8), byte(i & 255), 1}), off)
			as.cityNet[c.Name] = base
		}
		as.torNext = addrShift(netip.AddrFrom4([4]byte{171, 25, 193, 1}), off) // Tor-ish range
		as.prxNext = addrShift(netip.AddrFrom4([4]byte{185, 100, 84, 1}), off) // proxy-ish range
		return as
	}
	// Overflow plane: 2001:db8:<tenant>::/64 per tenant, pools keyed
	// by a kind byte so city/Tor/proxy ranges cannot meet. Every
	// consumer handles these addresses through netip.Addr, so the two
	// planes differ only in the bytes they print.
	for i, c := range cities {
		as.cityNet[c.Name] = addr6(tenant, 1, uint64(i)<<16|1)
	}
	as.torNext = addr6(tenant, 2, 1)
	as.prxNext = addr6(tenant, 3, 1)
	return as
}

// addr6 builds the overflow-plane address 2001:db8:<tenant>::/64 with
// a pool-kind byte and a low counter in the interface bits.
func addr6(tenant int, kind byte, low uint64) netip.Addr {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
	b[4] = byte(tenant >> 24)
	b[5] = byte(tenant >> 16)
	b[6] = byte(tenant >> 8)
	b[7] = byte(tenant)
	b[8] = kind
	b[9] = byte(low >> 48)
	b[10] = byte(low >> 40)
	b[11] = byte(low >> 32)
	b[12] = byte(low >> 24)
	b[13] = byte(low >> 16)
	b[14] = byte(low >> 8)
	b[15] = byte(low)
	return netip.AddrFrom16(b)
}

// addrShift adds a fixed offset to an IPv4 address.
func addrShift(a netip.Addr, off uint32) netip.Addr {
	b := a.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	v += off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// FromCity allocates a fresh address geolocated to the named city.
func (a *AddressSpace) FromCity(cityName string) (Endpoint, error) {
	city, ok := a.gaz.Lookup(cityName)
	if !ok {
		return Endpoint{}, fmt.Errorf("netsim: unknown city %q", cityName)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	addr := a.cityNet[city.Name]
	a.cityNet[city.Name] = addr.Next()
	a.assigned[addr] = city.Name
	return Endpoint{
		Addr:    addr,
		City:    city.Name,
		Country: city.Country,
		Point:   city.Point,
	}, nil
}

// TorExit allocates a fresh Tor exit endpoint: no geolocation, no
// meaningful origin point.
func (a *AddressSpace) TorExit() Endpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	addr := a.torNext
	a.torNext = addr.Next()
	a.assigned[addr] = ""
	a.torSet[addr] = true
	return Endpoint{Addr: addr, Tor: true}
}

// OpenProxy allocates a fresh anonymous-proxy endpoint.
func (a *AddressSpace) OpenProxy() Endpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	addr := a.prxNext
	a.prxNext = addr.Next()
	a.assigned[addr] = ""
	a.prxSet[addr] = true
	return Endpoint{Addr: addr, Proxy: true}
}

// IsTor reports whether the address was allocated from the Tor pool.
func (a *AddressSpace) IsTor(addr netip.Addr) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.torSet[addr]
}

// IsProxy reports whether the address was allocated from the proxy pool.
func (a *AddressSpace) IsProxy(addr netip.Addr) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prxSet[addr]
}

// CityOf returns the geolocation the activity page would display for
// an address, or "" if the address is anonymised or unknown.
func (a *AddressSpace) CityOf(addr netip.Addr) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.assigned[addr]
}

// Blacklist is a Spamhaus-style IP reputation list. In the paper, 20
// of the observed IP addresses appeared in the Spamhaus blacklist,
// which the authors read as malware-infected machines used as access
// proxies (§4.5). The simulation registers addresses of infected
// machines here; analyses then perform the same cross-check.
type Blacklist struct {
	mu     sync.RWMutex
	listed map[netip.Addr]string // addr -> reason
}

// NewBlacklist returns an empty blacklist.
func NewBlacklist() *Blacklist {
	return &Blacklist{listed: make(map[netip.Addr]string)}
}

// Add lists an address with a reason code (e.g. "XBL/botnet").
func (b *Blacklist) Add(addr netip.Addr, reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.listed[addr] = reason
}

// Lookup reports whether the address is listed, DNSBL-style.
func (b *Blacklist) Lookup(addr netip.Addr) (reason string, listed bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	reason, listed = b.listed[addr]
	return reason, listed
}

// LookupString is Lookup over a textual IP; unparseable strings are
// never listed.
func (b *Blacklist) LookupString(ip string) (reason string, listed bool) {
	addr, err := netip.ParseAddr(ip)
	if err != nil {
		return "", false
	}
	return b.Lookup(addr)
}

// Len returns the number of listed addresses.
func (b *Blacklist) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.listed)
}

// CookieJar issues per-browser cookie identifiers. Google identifies
// each access to an account with a cookie identifier (§4.3); our
// webmail service does the same, and attacker sessions hold one
// cookie per browser installation.
type CookieJar struct {
	mu     sync.Mutex
	prefix string
	next   uint64
}

// NewCookieJar returns a jar issuing IDs from a fixed origin.
func NewCookieJar() *CookieJar { return &CookieJar{next: 1} }

// NewCookieJarPrefixed returns a jar whose identifiers carry a
// namespace prefix. The sharded experiment engine gives each shard
// component its own prefixed jar so cookie values stay globally
// unique and independent of cross-shard issuance interleaving —
// a prerequisite for bit-for-bit reproducible parallel runs.
func NewCookieJarPrefixed(prefix string) *CookieJar {
	return &CookieJar{prefix: prefix, next: 1}
}

// Issue returns a fresh opaque cookie identifier.
func (j *CookieJar) Issue() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.next
	j.next++
	if j.prefix != "" {
		return fmt.Sprintf("GAPS-%s-%012x", j.prefix, id)
	}
	return fmt.Sprintf("GAPS-%012x", id)
}
