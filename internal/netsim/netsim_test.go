package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/rng"
)

func newSpace(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(rng.New(1), geo.Default())
}

func TestFromCityGeolocates(t *testing.T) {
	as := newSpace(t)
	ep, err := as.FromCity("London")
	if err != nil {
		t.Fatal(err)
	}
	if ep.City != "London" || ep.Country != "United Kingdom" {
		t.Fatalf("endpoint = %+v", ep)
	}
	if !ep.HasLocation() || ep.Anonymous() {
		t.Fatal("city endpoint should have location and not be anonymous")
	}
	if as.CityOf(ep.Addr) != "London" {
		t.Fatalf("CityOf = %q, want London", as.CityOf(ep.Addr))
	}
}

func TestFromCityUnknown(t *testing.T) {
	as := newSpace(t)
	if _, err := as.FromCity("Atlantis"); err == nil {
		t.Fatal("unknown city accepted")
	}
}

func TestAddressesUnique(t *testing.T) {
	as := newSpace(t)
	seen := map[netip.Addr]bool{}
	for i := 0; i < 200; i++ {
		ep, err := as.FromCity("London")
		if err != nil {
			t.Fatal(err)
		}
		if seen[ep.Addr] {
			t.Fatalf("duplicate address %v", ep.Addr)
		}
		seen[ep.Addr] = true
	}
	// Different cities must not collide either.
	ep1, _ := as.FromCity("Paris")
	ep2, _ := as.FromCity("Moscow")
	if seen[ep1.Addr] || seen[ep2.Addr] || ep1.Addr == ep2.Addr {
		t.Fatal("cross-city address collision")
	}
}

func TestTorExit(t *testing.T) {
	as := newSpace(t)
	ep := as.TorExit()
	if !ep.Tor || !ep.Anonymous() || ep.HasLocation() {
		t.Fatalf("tor endpoint = %+v", ep)
	}
	if !as.IsTor(ep.Addr) {
		t.Fatal("IsTor false for tor address")
	}
	if as.CityOf(ep.Addr) != "" {
		t.Fatal("tor address geolocated")
	}
}

func TestOpenProxy(t *testing.T) {
	as := newSpace(t)
	ep := as.OpenProxy()
	if !ep.Proxy || !ep.Anonymous() {
		t.Fatalf("proxy endpoint = %+v", ep)
	}
	if !as.IsProxy(ep.Addr) || as.IsTor(ep.Addr) {
		t.Fatal("pool membership wrong for proxy address")
	}
}

func TestPoolsDisjoint(t *testing.T) {
	as := newSpace(t)
	city, _ := as.FromCity("Tokyo")
	tor := as.TorExit()
	prx := as.OpenProxy()
	addrs := []netip.Addr{city.Addr, tor.Addr, prx.Addr}
	for i := 0; i < len(addrs); i++ {
		for j := i + 1; j < len(addrs); j++ {
			if addrs[i] == addrs[j] {
				t.Fatalf("pool collision: %v", addrs[i])
			}
		}
	}
}

func TestClassifyUserAgent(t *testing.T) {
	cases := []struct {
		ua      string
		browser Browser
		device  DeviceClass
	}{
		{"", BrowserUnknown, DeviceUnknown},
		{userAgents[BrowserChrome][0], BrowserChrome, DeviceDesktop},
		{userAgents[BrowserFirefox][0], BrowserFirefox, DeviceDesktop},
		{userAgents[BrowserIE][0], BrowserIE, DeviceDesktop},
		{userAgents[BrowserIE][1], BrowserIE, DeviceDesktop},
		{userAgents[BrowserSafari][0], BrowserSafari, DeviceDesktop},
		{userAgents[BrowserOpera][0], BrowserOpera, DeviceDesktop},
		{userAgents[BrowserAndroid][0], BrowserAndroid, DeviceAndroid},
		{"curl/7.43.0", BrowserUnknown, DeviceDesktop},
	}
	for _, tc := range cases {
		b, d := ClassifyUserAgent(tc.ua)
		if b != tc.browser || d != tc.device {
			t.Errorf("ClassifyUserAgent(%.40q) = %v,%v want %v,%v", tc.ua, b, d, tc.browser, tc.device)
		}
	}
}

func TestUserAgentRoundTrip(t *testing.T) {
	s := rng.New(2)
	for _, b := range []Browser{BrowserChrome, BrowserFirefox, BrowserIE, BrowserSafari, BrowserOpera, BrowserAndroid} {
		ua := UserAgentFor(s, b)
		if ua == "" {
			t.Fatalf("UserAgentFor(%v) empty", b)
		}
		got, _ := ClassifyUserAgent(ua)
		if got != b {
			t.Errorf("round trip %v -> %q -> %v", b, ua, got)
		}
	}
	if UserAgentFor(s, BrowserUnknown) != "" {
		t.Fatal("BrowserUnknown should map to empty UA (malware behaviour)")
	}
}

func TestBlacklist(t *testing.T) {
	bl := NewBlacklist()
	addr := netip.MustParseAddr("192.0.2.7")
	if _, listed := bl.Lookup(addr); listed {
		t.Fatal("empty blacklist lists an address")
	}
	bl.Add(addr, "XBL/botnet")
	reason, listed := bl.Lookup(addr)
	if !listed || reason != "XBL/botnet" {
		t.Fatalf("Lookup = %q,%v", reason, listed)
	}
	if bl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bl.Len())
	}
}

func TestCookieJarUniqueAndStableFormat(t *testing.T) {
	j := NewCookieJar()
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		c := j.Issue()
		if seen[c] {
			t.Fatalf("duplicate cookie %q", c)
		}
		if len(c) != len("GAPS-000000000001") {
			t.Fatalf("cookie format changed: %q", c)
		}
		seen[c] = true
	}
}

func TestDeviceAndBrowserStrings(t *testing.T) {
	if DeviceDesktop.String() != "desktop" || DeviceAndroid.String() != "android" || DeviceUnknown.String() != "unknown" {
		t.Fatal("device class labels changed")
	}
	if BrowserChrome.String() != "chrome" || BrowserUnknown.String() != "unknown" {
		t.Fatal("browser labels changed")
	}
	if DeviceClass(42).String() == "" || Browser(42).String() == "" {
		t.Fatal("out-of-range enums should still render")
	}
}

// Property: every allocated city address geolocates back to the city
// it was requested for.
func TestPropertyCityRoundTrip(t *testing.T) {
	as := newSpace(t)
	cities := geo.Default().Cities()
	f := func(pick uint16, n uint8) bool {
		city := cities[int(pick)%len(cities)].Name
		for i := 0; i <= int(n)%5; i++ {
			ep, err := as.FromCity(city)
			if err != nil || as.CityOf(ep.Addr) != city {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceTenantsDisjoint(t *testing.T) {
	gaz := geo.Default()
	seenCity := map[string]int{}
	seenTor := map[string]int{}
	seenProxy := map[string]int{}
	// Spans both planes: the IPv4 ladder, its last slot, and the
	// first/later slots of the IPv6 overflow plane.
	for _, tenant := range []int{0, 1, 2, 3, 4, 5, 399, v4Tenants - 1, v4Tenants, v4Tenants + 1, 8000, TenantSlots - 1} {
		as := NewAddressSpaceTenant(rng.New(1), gaz, tenant)
		for i := 0; i < 10; i++ {
			ep, err := as.FromCity("London")
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := seenCity[ep.Addr.String()]; dup {
				t.Fatalf("city address %s of tenant %d collides with tenant %d", ep.Addr, tenant, prev)
			}
			seenCity[ep.Addr.String()] = tenant
			tor := as.TorExit()
			if prev, dup := seenTor[tor.Addr.String()]; dup {
				t.Fatalf("tor address %s of tenant %d collides with tenant %d", tor.Addr, tenant, prev)
			}
			seenTor[tor.Addr.String()] = tenant
			prx := as.OpenProxy()
			if prev, dup := seenProxy[prx.Addr.String()]; dup {
				t.Fatalf("proxy address %s of tenant %d collides with tenant %d", prx.Addr, tenant, prev)
			}
			seenProxy[prx.Addr.String()] = tenant
		}
	}
}

func TestAddressSpaceTenantOutOfRangePanics(t *testing.T) {
	for _, tenant := range []int{-1, TenantSlots} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tenant %d did not panic", tenant)
				}
			}()
			NewAddressSpaceTenant(rng.New(1), geo.Default(), tenant)
		}()
	}
}
