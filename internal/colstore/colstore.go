// Package colstore provides the small building blocks shared by the
// struct-of-arrays ("columnar") hot-state stores in webmail, monitor
// and analysis: an append-only string arena and a deduplicating
// interner built on it.
//
// The row-per-struct layout the engine started with allocates one
// heap object per access row, per observation and per journal entry,
// and retains a private copy of every cookie, user-agent and geo
// string. At fleet scale (the ROADMAP's million-account target) that
// is tens of millions of small objects the garbage collector must
// trace on every cycle. The columnar stores keep each field in a
// parallel typed slice instead — one allocation per column growth,
// zero per row — and route all string fields through an Arena, so a
// partition's worth of cookies lives in a handful of 16KiB blocks
// rather than one allocation each.
package colstore

import "unsafe"

// arenaBlock is the allocation unit: string bytes are packed into
// blocks of this size, so per-string allocation cost is amortized to
// one make per ~16KiB of text.
const arenaBlock = 1 << 14

// Arena packs small immutable strings into large append-only byte
// blocks. Strings returned by Copy alias arena memory and stay valid
// for the arena's lifetime: a full block is abandoned (not grown), so
// previously returned strings keep pinning the block they live in.
//
// Arena is not safe for concurrent use; callers guard it with the
// lock that guards the columns it feeds (the webmail partition lock,
// the monitor store lock).
type Arena struct {
	block []byte
	// Bytes counts total packed bytes, for introspection/tests.
	bytes int
}

// Copy returns a stable copy of s backed by arena memory.
func (a *Arena) Copy(s string) string {
	if len(s) == 0 {
		return ""
	}
	a.bytes += len(s)
	if len(s) > arenaBlock/4 {
		// Oversized strings get their own allocation; packing them
		// would waste most of a fresh block.
		b := make([]byte, len(s))
		copy(b, s)
		return unsafe.String(&b[0], len(b))
	}
	if len(a.block)+len(s) > cap(a.block) {
		a.block = make([]byte, 0, arenaBlock)
	}
	off := len(a.block)
	a.block = append(a.block, s...)
	b := a.block[off : off+len(s) : off+len(s)]
	return unsafe.String(&b[0], len(b))
}

// Bytes reports the total string bytes the arena has packed.
func (a *Arena) Bytes() int { return a.bytes }

// Interner deduplicates strings drawn from a low-cardinality set
// (user agents, city/country names, IPs) into arena-backed canonical
// copies. After the first occurrence of each distinct value, Intern
// allocates nothing.
type Interner struct {
	arena Arena
	canon map[string]string
}

// Intern returns the canonical arena-backed copy of s.
func (in *Interner) Intern(s string) string {
	if s == "" {
		return ""
	}
	if c, ok := in.canon[s]; ok {
		return c
	}
	if in.canon == nil {
		in.canon = make(map[string]string)
	}
	c := in.arena.Copy(s)
	in.canon[c] = c
	return c
}

// Copy places s in the interner's arena without deduplication — for
// unique-by-construction strings (cookies) where a map probe per row
// would never hit.
func (in *Interner) Copy(s string) string { return in.arena.Copy(s) }

// Unique reports how many distinct strings the interner holds.
func (in *Interner) Unique() int { return len(in.canon) }
