package colstore

import (
	"fmt"
	"strings"
	"testing"
	"unsafe"
)

// TestArenaCopy: copies are value-equal to the input, stable across
// later appends (a full block is abandoned, never reallocated under
// returned strings), and independent of the caller's bytes.
func TestArenaCopy(t *testing.T) {
	var a Arena
	if got := a.Copy(""); got != "" {
		t.Fatalf("Copy(\"\") = %q", got)
	}
	if a.Bytes() != 0 {
		t.Fatalf("empty copy counted %d bytes", a.Bytes())
	}

	src := []byte("mutable source")
	first := a.Copy(string(src))
	var copies []string
	var want []string
	for i := 0; i < 10000; i++ {
		s := fmt.Sprintf("value-%d", i)
		copies = append(copies, a.Copy(s))
		want = append(want, s)
	}
	if first != "mutable source" {
		t.Fatalf("first copy drifted to %q after later appends", first)
	}
	for i := range copies {
		if copies[i] != want[i] {
			t.Fatalf("copy %d drifted to %q", i, copies[i])
		}
	}
	total := len("mutable source")
	for _, s := range want {
		total += len(s)
	}
	if a.Bytes() != total {
		t.Fatalf("Bytes() = %d, want %d", a.Bytes(), total)
	}
}

// TestArenaOversized: strings too large to pack get their own
// allocation and stay intact, without abandoning the current block.
func TestArenaOversized(t *testing.T) {
	var a Arena
	small := a.Copy("resident")
	big := a.Copy(strings.Repeat("x", arenaBlock))
	after := a.Copy("after")
	if len(big) != arenaBlock || strings.Trim(big, "x") != "" {
		t.Fatal("oversized copy corrupted")
	}
	if small != "resident" || after != "after" {
		t.Fatal("small copies disturbed by an oversized one")
	}
}

// TestInternerDedups: equal strings intern to the identical canonical
// copy, distinct strings stay distinct, and the canonical copies
// survive arbitrarily many later interns.
func TestInternerDedups(t *testing.T) {
	var in Interner
	if got := in.Intern(""); got != "" {
		t.Fatalf("Intern(\"\") = %q", got)
	}
	ua := in.Intern("Mozilla/5.0 (X11; Linux x86_64)")
	for i := 0; i < 1000; i++ {
		in.Intern(fmt.Sprintf("city-%d", i%100))
	}
	again := in.Intern("Mozilla/5.0 (X11; " + "Linux x86_64)")
	if ua != again {
		t.Fatal("equal strings interned to different values")
	}
	// Canonical means pointer-identical, not merely equal: the second
	// intern must return the same arena bytes, allocating nothing.
	if unsafeStringData(ua) != unsafeStringData(again) {
		t.Fatal("re-interning an equal string produced a second copy")
	}
	if in.Unique() != 1+100 {
		t.Fatalf("Unique() = %d, want 101", in.Unique())
	}
}

// TestInternSteadyStateAllocs: after first occurrence, Intern is
// allocation-free — the property the hot scrape/access paths rely on.
func TestInternSteadyStateAllocs(t *testing.T) {
	var in Interner
	vals := []string{"London", "Pontiac", "Lagos", "tor-exit", "proxy"}
	for _, v := range vals {
		in.Intern(v)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			in.Intern(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Intern allocates %v per run, want 0", allocs)
	}
}

// TestInternerCopyNoDedup: Copy places bytes without touching the
// canonical map — two copies of one value are separate arena strings.
func TestInternerCopyNoDedup(t *testing.T) {
	var in Interner
	c1 := in.Copy("cookie-abc123")
	c2 := in.Copy("cookie-abc123")
	if c1 != c2 {
		t.Fatal("copies not value-equal")
	}
	if unsafeStringData(c1) == unsafeStringData(c2) {
		t.Fatal("Copy deduplicated; cookies must not pay a map probe")
	}
	if in.Unique() != 0 {
		t.Fatalf("Copy populated the canonical map: Unique() = %d", in.Unique())
	}
}

// unsafeStringData returns the string's backing pointer for identity
// checks (comparing interning behaviour, not contents).
func unsafeStringData(s string) uintptr {
	if len(s) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(unsafe.StringData(s)))
}
