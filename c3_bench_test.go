// C3 service benchmarks: the cost of building the credential index at
// fleet scale and the sustained whole-bucket query rate a defender (or
// the wire replayer) sees against it. Both run at one million synthetic
// credentials — the scale Li et al.'s k-anonymity analysis assumes —
// and bench_snapshot.sh records them into the BENCH_PR trajectory,
// where check of the ISSUE acceptance bar (≥5k range-queries/s) reads
// the range-qps metric.
package repro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/c3"
)

// c3BenchCreds is the index size both benchmarks use. 2^16 buckets
// over a million entries keeps buckets ~15 hashes wide, matching the
// deployment shape the k-anonymity defaults target.
const c3BenchCreds = 1_000_000

// c3Fill streams the deterministic synthetic corpus into a fresh
// store and pays the deferred co-sort, so what it returns is a
// queryable index, not just an append log.
func c3Fill(b *testing.B, n int) *c3.Store {
	b.Helper()
	st, err := c3.New(c3.Config{})
	if err != nil {
		b.Fatal(err)
	}
	at := time.Unix(0, 0)
	c3.Synthetic(1, n, func(account, password string) {
		st.Add(account, password, "synthetic", at)
	})
	if _, err := st.Range(0); err != nil {
		b.Fatal(err)
	}
	return st
}

// c3Index caches one built index shared by the query benchmarks, so
// -count runs do not rebuild a million entries per measurement.
var c3Index struct {
	once  sync.Once
	store *c3.Store
}

func c3BenchStore(b *testing.B) *c3.Store {
	b.Helper()
	c3Index.once.Do(func() { c3Index.store = c3Fill(b, c3BenchCreds) })
	if c3Index.store == nil {
		b.Fatal("c3 bench index failed to build")
	}
	return c3Index.store
}

// BenchmarkC3Build measures the full ingest-and-sort cost of indexing
// one million credentials — the worst-case cold build a `c3d -creds`
// or snapshot boot pays before serving its first query.
func BenchmarkC3Build(b *testing.B) {
	b.Run("creds=1000000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := c3Fill(b, c3BenchCreds)
			if st.Len() != c3BenchCreds {
				b.Fatalf("built %d entries, want %d", st.Len(), c3BenchCreds)
			}
		}
		b.ReportMetric(float64(c3BenchCreds)*float64(b.N)/b.Elapsed().Seconds(), "creds/s")
	})
}

// BenchmarkC3Range measures sustained whole-bucket query throughput
// against the million-credential index. Each op issues a fixed batch
// of queries over a deterministic prefix walk that touches every
// region of the bucket space, and the range-qps metric records the
// achieved rate — the number bench_snapshot.sh publishes and the
// ≥5k req/s acceptance bar reads.
func BenchmarkC3Range(b *testing.B) {
	b.Run("creds=1000000", func(b *testing.B) {
		st := c3BenchStore(b)
		const queriesPerOp = 4096
		buckets := st.Buckets()
		// Odd stride coprime with 2^bits walks all buckets without
		// repeating; no RNG, so every run issues the same queries.
		const stride = 2654435761
		b.ResetTimer()
		b.ReportAllocs()
		var total int
		prefix := uint64(0)
		for i := 0; i < b.N; i++ {
			for q := 0; q < queriesPerOp; q++ {
				hashes, err := st.Range(prefix % buckets)
				if err != nil {
					b.Fatal(err)
				}
				total += len(hashes)
				prefix += stride
			}
		}
		if total == 0 {
			b.Fatal("no hashes returned across the whole prefix walk")
		}
		b.ReportMetric(float64(b.N*queriesPerOp)/b.Elapsed().Seconds(), "range-qps")
	})
}
