// Cross-module integration tests: run a medium deployment and check
// the invariants that span subsystem boundaries — containment (no mail
// escapes), monitoring fidelity (the inferred dataset agrees with the
// attacker engine's ground truth), and classification accuracy (the
// paper-faithful inference pipeline recovers what the generative
// models actually did). These are the checks a real deployment could
// never make; the simulator's ground truth makes them testable.
package repro

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/attacker"
	"repro/internal/core"
	"repro/internal/honeynet"
)

func mediumConfig(seed int64) core.Config {
	return core.Config{
		Seed: seed,
		Plan: []honeynet.GroupSpec{
			{ID: 1, Count: 8, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste"},
			{ID: 2, Count: 6, Channel: analysis.OutletPaste, Hint: analysis.HintUK, Label: "paste uk"},
			{ID: 3, Count: 6, Channel: analysis.OutletForum, Hint: analysis.HintNone, Label: "forum"},
			{ID: 5, Count: 6, Channel: analysis.OutletMalware, Hint: analysis.HintNone, Label: "malware"},
		},
		Duration:       120 * 24 * time.Hour,
		MailboxSize:    30,
		ScanInterval:   30 * time.Minute,
		ScrapeInterval: 2 * time.Hour,
	}
}

func runMedium(t *testing.T, seed int64) (*core.Experiment, *analysis.Dataset) {
	t.Helper()
	exp, err := core.NewExperiment(mediumConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		t.Fatal(err)
	}
	return exp, exp.Dataset()
}

// TestContainment: every message leaving any honey account terminates
// in the sinkhole with the rewritten envelope sender; the count of
// sinkholed messages equals the platform's send events.
func TestContainment(t *testing.T) {
	exp, ds := runMedium(t, 21)
	sends := 0
	for _, acct := range exp.Service().Accounts() {
		for _, ev := range exp.Service().Journal(acct) {
			if ev.Kind.String() == "send" {
				sends++
			}
		}
	}
	if got := exp.SinkholeCount(); got != sends {
		t.Fatalf("sinkhole holds %d messages, platform journaled %d sends", got, sends)
	}
	for _, m := range exp.Sinkholed() {
		if m.From != "capture@sinkhole.example" {
			t.Fatalf("escaped envelope sender %q", m.From)
		}
	}
	_ = ds
}

// TestMonitorFidelity: every access in the monitoring dataset
// corresponds to a ground-truth attacker record (same cookie, same
// account), i.e. the pipeline never invents accesses; misses are only
// due to documented visibility loss.
func TestMonitorFidelity(t *testing.T) {
	exp, ds := runMedium(t, 22)
	truth := map[string]attacker.Record{}
	for _, r := range exp.Records() {
		truth[r.Cookie] = r
	}
	for _, a := range ds.Accesses {
		r, ok := truth[a.Cookie]
		if !ok {
			t.Fatalf("monitor invented access %q on %s", a.Cookie, a.Account)
		}
		if r.Account != a.Account {
			t.Fatalf("cookie %q attributed to %s, ground truth %s", a.Cookie, a.Account, r.Account)
		}
		// Outlet annotation agrees (the plan's channel vs the engine's
		// label; paste-ru maps to the paste label at the engine level).
		if string(a.Outlet) != string(r.Outlet) && !(a.Outlet == analysis.OutletPasteRussian && r.Outlet == attacker.OutletPasteRussian) {
			t.Fatalf("outlet mismatch for %q: dataset %q vs truth %q", a.Cookie, a.Outlet, r.Outlet)
		}
	}
	if len(ds.Accesses) == 0 {
		t.Fatal("empty dataset")
	}
}

// TestClassificationAccuracy: the time-window attribution of actions
// to accesses recovers the generative behaviour at the account level.
// Cookie-level attribution is inherently lossy — a spam burst suspends
// the account before the spammer's own activity row is ever scraped,
// so the sends land on the last *visible* access (the paper's §4.2
// visibility loss) — but the inferred class must never point at an
// account where the behaviour did not happen at all.
func TestClassificationAccuracy(t *testing.T) {
	exp, ds := runMedium(t, 23)
	spamAccounts := map[string]bool{}
	hijackAccounts := map[string]bool{}
	for _, r := range exp.Records() {
		if r.Classes.Has(attacker.ClassSpammer) {
			spamAccounts[r.Account] = true
		}
		if r.Classes.Has(attacker.ClassHijacker) {
			hijackAccounts[r.Account] = true
		}
	}
	cs := analysis.Classify(ds, analysis.ClassifyOptions{Slack: 30 * time.Minute})
	for _, c := range cs {
		if c.Classes.Has(analysis.Spammer) && !spamAccounts[c.Access.Account] {
			t.Fatalf("access %s inferred spammer but account %s never spammed",
				c.Access.Cookie, c.Access.Account)
		}
		if c.Classes.Has(analysis.Hijacker) && !hijackAccounts[c.Access.Account] {
			t.Fatalf("access %s inferred hijacker but account %s was never hijacked",
				c.Access.Cookie, c.Access.Account)
		}
	}
}

// TestKeywordInferenceRecoversSearches: terms the TF-IDF pipeline
// ranks highly should overlap the queries attackers actually typed
// (ground truth search logs).
func TestKeywordInferenceRecoversSearches(t *testing.T) {
	exp, ds := runMedium(t, 24)
	searched := map[string]bool{}
	for _, acct := range exp.Service().Accounts() {
		for _, q := range exp.Service().SearchLog(acct) {
			searched[q] = true
		}
	}
	if len(searched) == 0 {
		t.Skip("no searches happened for this seed")
	}
	result := analysis.KeywordInference(ds, exp.DropWords())
	hits := 0
	for _, row := range result.TopSearched(15) {
		if searched[row.Term] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("top-15 inferred terms contain only %d actually-searched terms", hits)
	}
}

// TestLeakChannelIsolation: accounts leaked only to malware never see
// hijacks or spam, end to end (platform journal, not just dataset).
func TestLeakChannelIsolation(t *testing.T) {
	exp, _ := runMedium(t, 25)
	for _, a := range exp.Assignments() {
		if a.Group.Channel != analysis.OutletMalware {
			continue
		}
		for _, ev := range exp.Service().Journal(a.Account) {
			if ev.Kind.String() == "password-change" {
				t.Fatalf("malware-leaked %s was hijacked", a.Account)
			}
		}
	}
}

// TestSeedSensitivity: different seeds change counts but preserve the
// structural invariants (determinism per seed is covered elsewhere).
func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run seed sweep in -short mode")
	}
	for _, seed := range []int64{31, 32, 33} {
		_, ds := runMedium(t, seed)
		cs := analysis.Classify(ds, analysis.ClassifyOptions{})
		per := analysis.ByOutlet(cs)
		if c := per[analysis.OutletMalware]; c.Hijacker != 0 || c.Spammer != 0 {
			t.Fatalf("seed %d: malware hijack/spam = %d/%d", seed, c.Hijacker, c.Spammer)
		}
		for _, c := range cs {
			if c.Classes.Has(analysis.Spammer) && !c.Classes.Has(analysis.GoldDigger) && !c.Classes.Has(analysis.Hijacker) {
				// Inferred exclusive spammers can appear when actions
				// are attributed to a window with no reads; the
				// generative invariant is checked in attacker tests.
				t.Logf("seed %d: inferred exclusive spammer %s (attribution ambiguity)", seed, c.Access.Cookie)
			}
		}
	}
}
