// Package repro's benchmark harness regenerates every table and
// figure of the paper's evaluation (§4) from a full seven-month
// simulated deployment, plus the ablations DESIGN.md calls out and
// micro-benchmarks of the core primitives. Run:
//
//	go test -bench=. -benchmem
//
// Each table/figure benchmark prints its artifact once (the rows the
// paper reports) and then times the analysis that produces it.
package repro

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/attacker"
	"repro/internal/geo"
	"repro/internal/honeynet"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/snapshot"
	"repro/internal/webmail"
)

// fullRun caches one complete Table 1 deployment (100 accounts,
// 236 days) shared by all table/figure benchmarks.
var fullRun = struct {
	once sync.Once
	exp  *honeynet.Experiment
	ds   *analysis.Dataset
	err  error
}{}

func dataset(b *testing.B) (*honeynet.Experiment, *analysis.Dataset) {
	b.Helper()
	fullRun.once.Do(func() {
		exp, err := honeynet.New(honeynet.Config{Seed: 42})
		if err != nil {
			fullRun.err = err
			return
		}
		if err := exp.RunAll(); err != nil {
			fullRun.err = err
			return
		}
		fullRun.exp = exp
		fullRun.ds = exp.Dataset()
	})
	if fullRun.err != nil {
		b.Fatal(fullRun.err)
	}
	return fullRun.exp, fullRun.ds
}

// printOnce emits a benchmark's artifact a single time across -benchtime
// iterations.
var printed sync.Map

func printOnce(name, artifact string) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, artifact)
	}
}

// BenchmarkOverviewStats regenerates the §4.1/§4.5 headline numbers.
func BenchmarkOverviewStats(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var o analysis.Overview
	for i := 0; i < b.N; i++ {
		o = analysis.Summarize(ds)
	}
	printOnce("Overview (§4.1/§4.5)", report.Overview(o))
}

// BenchmarkTable1Groups regenerates Table 1.
func BenchmarkTable1Groups(b *testing.B) {
	exp, _ := dataset(b)
	b.ResetTimer()
	var rows []report.Table1Row
	for i := 0; i < b.N; i++ {
		counts := map[int]int{}
		for _, a := range exp.Assignments() {
			counts[a.Group.ID]++
		}
		rows = rows[:0]
		for id := 1; id <= 5; id++ {
			if counts[id] > 0 {
				rows = append(rows, report.Table1Row{Group: id, Count: counts[id], Label: honeynet.PaperGroupLabel(id)})
			}
		}
	}
	printOnce("Table 1", report.Table1(rows))
}

// BenchmarkFigure1AccessLengthCDF regenerates Figure 1.
func BenchmarkFigure1AccessLengthCDF(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var durations map[string][]float64
	for i := 0; i < b.N; i++ {
		cs := analysis.Classify(ds, analysis.ClassifyOptions{})
		durations = analysis.DurationsByClass(cs)
	}
	printOnce("Figure 1", report.Figure1(durations))
}

// BenchmarkFigure2TaxonomyByOutlet regenerates Figure 2.
func BenchmarkFigure2TaxonomyByOutlet(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var per map[analysis.Outlet]analysis.ClassCounts
	for i := 0; i < b.N; i++ {
		per = analysis.ByOutlet(analysis.Classify(ds, analysis.ClassifyOptions{}))
	}
	printOnce("Figure 2", report.Figure2(per))
}

// BenchmarkFigure3TimeToFirstAccess regenerates Figure 3.
func BenchmarkFigure3TimeToFirstAccess(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var days map[analysis.Outlet][]float64
	for i := 0; i < b.N; i++ {
		days = analysis.TimeToFirstAccess(ds)
	}
	printOnce("Figure 3", report.Figure3(days))
}

// BenchmarkFigure4AccessTimeline regenerates Figure 4.
func BenchmarkFigure4AccessTimeline(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var pts []analysis.TimelinePoint
	for i := 0; i < b.N; i++ {
		pts = analysis.Timeline(ds)
	}
	printOnce("Figure 4", report.Figure4(pts))
}

// BenchmarkSystemConfiguration regenerates the §4.4 breakdown.
func BenchmarkSystemConfiguration(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var rows []analysis.ConfigRow
	for i := 0; i < b.N; i++ {
		rows = analysis.SystemConfiguration(ds)
	}
	printOnce("System configuration (§4.4)", report.SystemConfig(rows))
}

// BenchmarkLocationOverview regenerates the §4.5 geo summary.
func BenchmarkLocationOverview(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var o analysis.Overview
	for i := 0; i < b.N; i++ {
		o = analysis.Summarize(ds)
	}
	artifact := fmt.Sprintf(
		"countries=%d (paper 29)\naccesses with location=%d (paper 173)\nwithout location (Tor/proxies)=%d (paper 154)\nblacklisted IPs=%d (paper 20)",
		o.Countries, o.WithLocation, o.WithoutLocation, o.BlacklistedIPs)
	printOnce("Location overview (§4.5)", artifact)
}

// BenchmarkFigure5aUKDistance regenerates Figure 5a.
func BenchmarkFigure5aUKDistance(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var rows []analysis.RadiusRow
	for i := 0; i < b.N; i++ {
		rows = analysis.MedianRadii(ds, analysis.HintUK)
	}
	printOnce("Figure 5a", report.Figure5("UK/London", rows))
}

// BenchmarkFigure5bUSDistance regenerates Figure 5b.
func BenchmarkFigure5bUSDistance(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var rows []analysis.RadiusRow
	for i := 0; i < b.N; i++ {
		rows = analysis.MedianRadii(ds, analysis.HintUS)
	}
	printOnce("Figure 5b", report.Figure5("US/Pontiac", rows))
}

// BenchmarkCramerVonMises regenerates the §4.5 significance tests.
func BenchmarkCramerVonMises(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var rows []analysis.SignificanceRow
	for i := 0; i < b.N; i++ {
		rows = analysis.LocationSignificance(ds, 500, 7)
	}
	printOnce("CvM significance (§4.5)", report.Significance(rows))
}

// BenchmarkTable2TFIDF regenerates Table 2.
func BenchmarkTable2TFIDF(b *testing.B) {
	exp, ds := dataset(b)
	drop := exp.DropWords()
	b.ResetTimer()
	var r *analysis.TFIDFResult
	for i := 0; i < b.N; i++ {
		r = analysis.KeywordInference(ds, drop)
	}
	printOnce("Table 2", report.Table2(r.TopSearched(10), r.TopCorpus(10)))
}

// BenchmarkCaseStudies verifies and times the §4.7 scenario extraction.
func BenchmarkCaseStudies(b *testing.B) {
	exp, ds := dataset(b)
	b.ResetTimer()
	var artifact string
	for i := 0; i < b.N; i++ {
		drafts := 0
		for _, a := range ds.Actions {
			if a.Kind == analysis.ActionDraft {
				drafts++
			}
		}
		artifact = fmt.Sprintf(
			"blackmail sessions=%d (paper: 3 accounts)\nabandoned draft copies captured=%d (paper: 12 unique drafts)\nforum inquiries logged=%d",
			exp.Blackmailers(), drafts, len(exp.AllInquiries()))
	}
	printOnce("Case studies (§4.7)", artifact)
}

// BenchmarkSophistication regenerates the §4.8 matrix.
func BenchmarkSophistication(b *testing.B) {
	_, ds := dataset(b)
	b.ResetTimer()
	var artifact string
	for i := 0; i < b.N; i++ {
		rows := analysis.SystemConfiguration(ds)
		sig := analysis.LocationSignificance(ds, 300, 7)
		artifact = report.Sophistication(rows, sig)
	}
	printOnce("Sophistication (§4.8)", artifact)
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §3): smaller deployments with one knob flipped.

func ablationConfig(seed int64) honeynet.Config {
	return honeynet.Config{
		Seed: seed,
		Plan: []honeynet.GroupSpec{
			{ID: 1, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste"},
			{ID: 2, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintUK, Label: "paste uk"},
		},
		Duration:       90 * 24 * time.Hour,
		MailboxSize:    30,
		ScanInterval:   time.Hour,
		ScrapeInterval: 6 * time.Hour,
	}
}

var ablationCache sync.Map

func runAblation(b *testing.B, key string, mutate func(*honeynet.Config)) *analysis.Dataset {
	b.Helper()
	if v, ok := ablationCache.Load(key); ok {
		return v.(*analysis.Dataset)
	}
	cfg := ablationConfig(7)
	if mutate != nil {
		mutate(&cfg)
	}
	exp, err := honeynet.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		b.Fatal(err)
	}
	ds := exp.Dataset()
	ablationCache.Store(key, ds)
	return ds
}

// BenchmarkAblationLocationHint quantifies the paper's core §4.5
// claim: advertising a decoy location pulls accesses toward it.
func BenchmarkAblationLocationHint(b *testing.B) {
	ds := runAblation(b, "hint", nil)
	b.ResetTimer()
	var rows []analysis.RadiusRow
	for i := 0; i < b.N; i++ {
		rows = analysis.MedianRadii(ds, analysis.HintUK)
	}
	printOnce("Ablation: location hint", report.Figure5("UK (ablation)", rows))
}

// BenchmarkAblationScanInterval compares notification latency at 10m
// vs 6h scan triggers.
func BenchmarkAblationScanInterval(b *testing.B) {
	fast := runAblation(b, "scan-fast", func(c *honeynet.Config) { c.ScanInterval = 10 * time.Minute })
	slow := runAblation(b, "scan-slow", func(c *honeynet.Config) { c.ScanInterval = 6 * time.Hour })
	b.ResetTimer()
	var artifact string
	for i := 0; i < b.N; i++ {
		artifact = fmt.Sprintf("actions observed: scan=10m %d, scan=6h %d (coarser scans lose draft edits between scans)",
			len(fast.Actions), len(slow.Actions))
	}
	printOnce("Ablation: scan interval", artifact)
}

// BenchmarkAblationScriptHiding compares hidden vs visible scripts.
func BenchmarkAblationScriptHiding(b *testing.B) {
	hidden := runAblation(b, "hidden", nil)
	visible := runAblation(b, "visible", func(c *honeynet.Config) { c.VisibleScripts = true })
	b.ResetTimer()
	var artifact string
	for i := 0; i < b.N; i++ {
		artifact = fmt.Sprintf("accesses observed: hidden scripts %d, visible scripts %d",
			len(hidden.Accesses), len(visible.Accesses))
	}
	printOnce("Ablation: script hiding", artifact)
}

// BenchmarkAblationLoginFilter turns Google-style login risk analysis
// ON (the paper disabled it for honey accounts) and measures how many
// accesses would have been blocked.
func BenchmarkAblationLoginFilter(b *testing.B) {
	open := runAblation(b, "filter-off", nil)
	filtered := runAblation(b, "filter-on", func(c *honeynet.Config) {
		c.LoginRisk = webmail.LoginRiskConfig{Enabled: true, BlockTor: true, BlockProxies: true}
	})
	b.ResetTimer()
	var artifact string
	for i := 0; i < b.N; i++ {
		artifact = fmt.Sprintf("accesses observed: filters off %d, filters on %d (Tor/proxy logins blocked)",
			len(open.Accesses), len(filtered.Accesses))
	}
	printOnce("Ablation: suspicious-login filter", artifact)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core primitives.

func BenchmarkWebmailLoginAndSearch(b *testing.B) {
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	svc := webmail.NewService(webmail.Config{Clock: clock})
	svc.CreateAccount("bench@honeymail.example", "pw", "Bench")
	for i := 0; i < 100; i++ {
		svc.Seed("bench@honeymail.example", webmail.FolderInbox, "x@y", "bench",
			fmt.Sprintf("wire transfer %d", i), "payment details and account statement", clock.Now())
	}
	space := netsim.NewAddressSpace(rng.New(1), geo.Default())
	ep, _ := space.FromCity("Paris")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se, err := svc.Login("bench@honeymail.example", "pw", "", ep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := se.Search("transfer payment"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTFIDFCompute(b *testing.B) {
	exp, ds := dataset(b)
	drop := exp.DropWords()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.KeywordInference(ds, drop)
	}
}

func BenchmarkCvMStatistic(b *testing.B) {
	src := rng.New(3)
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i], y[i] = src.Float64(), src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.CvMStatistic(x, y)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	sched := simtime.NewScheduler(clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.After(time.Duration(i)*time.Microsecond, "bench", func(time.Time) {})
		sched.Step()
	}
}

func BenchmarkAttackerSession(b *testing.B) {
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	sched := simtime.NewScheduler(clock)
	svc := webmail.NewService(webmail.Config{Clock: clock})
	gaz := geo.Default()
	space := netsim.NewAddressSpace(rng.New(1), gaz)
	engine := attacker.New(attacker.Config{
		Service: svc, Scheduler: sched, Space: space,
		Blacklist: netsim.NewBlacklist(), Gazetteer: gaz, Src: rng.New(2),
	})
	_ = engine
	for i := 0; i < 50; i++ {
		addr := fmt.Sprintf("b%d@honeymail.example", i)
		svc.CreateAccount(addr, "pw", "B")
		svc.Seed(addr, webmail.FolderInbox, "x@y", addr, "payment", "transfer details", clock.Now())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := fmt.Sprintf("b%d@honeymail.example", i%50)
		se, err := svc.Login(addr, "pw", svc.NewCookie(), space.TorExit())
		if err != nil {
			b.Fatal(err)
		}
		se.Search("payment")
	}
}

// BenchmarkMonitorScrape measures the scrape tick over 100 tracked
// accounts in the three regimes dirty tracking distinguishes: all
// accounts quiet (the version gate skips everything — the fleet-scale
// steady state), one account active per tick (one login+delta, 99
// skips), and the gate disabled (the legacy login-everyone shape).
func BenchmarkMonitorScrape(b *testing.B) {
	setup := func(gateOff bool) (*simtime.Clock, *webmail.Service, *monitor.Monitor, netsim.Endpoint) {
		clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
		sched := simtime.NewScheduler(clock)
		svc := webmail.NewService(webmail.Config{Clock: clock})
		space := netsim.NewAddressSpace(rng.New(1), geo.Default())
		store := monitor.NewStore()
		monEP, _ := space.FromCity("London")
		mon := monitor.New(monitor.Config{
			Service: svc, Scheduler: sched, Store: store, Endpoint: monEP,
			DisableVersionGate: gateOff,
		})
		for i := 0; i < 100; i++ {
			addr := fmt.Sprintf("m%d@honeymail.example", i)
			svc.CreateAccount(addr, "pw", "M")
			mon.Track(addr, "pw")
		}
		ep, _ := space.FromCity("Paris")
		return clock, svc, mon, ep
	}
	b.Run("quiet", func(b *testing.B) {
		clock, _, mon, _ := setup(false)
		mon.ScrapeAll(clock.Now()) // settle cursors
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mon.ScrapeAll(clock.Now())
		}
	})
	b.Run("one-active", func(b *testing.B) {
		clock, svc, mon, ep := setup(false)
		mon.ScrapeAll(clock.Now())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := fmt.Sprintf("m%d@honeymail.example", i%100)
			if _, err := svc.Login(addr, "pw", svc.NewCookie(), ep); err != nil {
				b.Fatal(err)
			}
			mon.ScrapeAll(clock.Now())
		}
	})
	b.Run("ungated", func(b *testing.B) {
		clock, _, mon, _ := setup(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mon.ScrapeAll(clock.Now())
		}
	})
}

// ---------------------------------------------------------------------------
// Sharded engine: the scaling benchmark behind the fleet-scale design.
//
// BenchmarkShardedRun executes the full Table 1 deployment end to end
// (Setup + Leak + Run + analysis) at several (shards, scale) points
// through the engine's default streaming pipeline: each shard
// classifies its accesses as simulated time advances and the final
// analysis step merges one aggregate per shard — O(shards) — instead
// of merging, sorting and classifying every access record (the PR 1
// shape measured 32.70s at shards=4/scale=10; PR 2's streaming
// pipeline cut that to 23.22s; PR 3's dirty tracking — version-gated
// scraping plus the trigger wheel that collapses per-account scan
// events into one heap event per tick — brought it to ~3.1s on the
// same 1-core container). The reported numbers are identical at every
// shard count — only wall-clock time changes. Run with:
//
//	go test -bench BenchmarkShardedRun -benchtime 1x
//
// scripts/bench_snapshot.sh records the trajectory into BENCH_PR<N>.json;
// besides seconds it now captures allocs/op (-benchmem) and the
// live-heap-bytes metric below, so the regression gate can compare
// allocation counts across machines where wall-clock seconds do not
// transfer.
func benchShardedRun(b *testing.B, shards, scale int) {
	benchShardedRunCfg(b, honeynet.Config{
		Seed:        42,
		Shards:      shards,
		ScaleFactor: scale,
	})
}

// benchShardedRunCfg runs one full deployment per iteration under an
// arbitrary config, timing the setup phase separately (the
// setup-seconds metric bench_snapshot.sh records) alongside the
// whole-run seconds and the live-heap footprint.
func benchShardedRunCfg(b *testing.B, cfg honeynet.Config) {
	b.Helper()
	b.ReportAllocs()
	var keep *honeynet.Experiment
	var setupTotal time.Duration
	for i := 0; i < b.N; i++ {
		exp, err := honeynet.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		setupStart := time.Now()
		if err := exp.Setup(); err != nil {
			b.Fatal(err)
		}
		setupTotal += time.Since(setupStart)
		if err := exp.Leak(); err != nil {
			b.Fatal(err)
		}
		if err := exp.Run(); err != nil {
			b.Fatal(err)
		}
		agg, err := exp.Aggregates()
		if err != nil {
			b.Fatal(err)
		}
		if agg.Classes.Total == 0 {
			b.Fatal("sharded run produced no classified accesses")
		}
		keep = exp
	}
	b.ReportMetric(setupTotal.Seconds()/float64(b.N), "setup-seconds")
	// Live heap with a completed deployment still reachable: the
	// retained fleet footprint (accounts, mailboxes, observation
	// columns) after a GC, reported so the scaling-ceilings table in
	// ARCHITECTURE.md — and the "scale=100 stays within 10x of
	// scale=10" budget — come from a measured number, not an estimate.
	b.StopTimer()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc), "live-heap-bytes")
	runtime.KeepAlive(keep)
}

func BenchmarkShardedRun(b *testing.B) {
	shardCounts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, scale := range []int{1, 10} {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("shards=%d/scale=%d", shards, scale), func(b *testing.B) {
				benchShardedRun(b, shards, scale)
			})
		}
	}
}

// BenchmarkShardedRunXL extends the scaling matrix to fleet scale:
// scale=100 is a 10,000-account deployment (100x the paper), and
// setting BENCH_XXL=1 adds scale=1000 — the 100,000-account run that
// takes tens of minutes on one core and is only worth timing on a
// multi-core box. Fleet scale runs the parallel setup layout
// (SetupSeed != 0, one worker per CPU) — the configuration the
// scenario matrix and any scale-chasing deployment actually uses.
// The shards=1 vs shards=4 pair at scale=100 is the multi-core
// scaling contract: CI's bench-multicore job (4 vCPUs) fails unless
// shards=4 is at least 1.5x faster. The allocs/op and live-heap-bytes
// metrics at shards=4/scale=100 are strict regression gates
// (scripts/check_bench_regression.sh); live heap must also stay
// within 10x of scale=10, or per-account cost has regressed
// superlinearly.
func BenchmarkShardedRunXL(b *testing.B) {
	scales := []int{100}
	if os.Getenv("BENCH_XXL") != "" {
		scales = append(scales, 1000)
	}
	for _, scale := range scales {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("shards=%d/scale=%d", shards, scale), func(b *testing.B) {
				benchShardedRunCfg(b, honeynet.Config{
					Seed:        42,
					SetupSeed:   7,
					Shards:      shards,
					ScaleFactor: scale,
				})
			})
		}
	}
}

// BenchmarkSetupXL isolates the cold setup phase at fleet scale:
// 10,000 accounts created, seeded and instrumented, nothing else.
// The setup-workers=1 vs setup-workers=4 pair is the parallel-setup
// scaling contract — CI's bench-multicore job (4 vCPUs) fails unless
// 4 workers beat 1 by at least 2x — and TestParallelSetupInvariance
// holds the other side of the bargain: the worker count never moves
// a byte of output.
func BenchmarkSetupXL(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("setup-workers=%d/scale=100", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp, err := honeynet.New(honeynet.Config{
					Seed:         42,
					SetupSeed:    7,
					SetupWorkers: workers,
					Shards:       4,
					ScaleFactor:  100,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := exp.Setup(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrixRun times the scenario matrix engine end to end:
// five named presets running concurrently on a shared worker budget
// (NumCPU workers, 2 shards/scenario), 60-day windows. This is the
// multi-experiment workload the scenario subsystem opens up; the
// trajectory continues in scripts/bench_snapshot.sh's BENCH_PR4.json.
func BenchmarkMatrixRun(b *testing.B) {
	names := []string{"baseline", "paste-only", "forum-only", "malware-heavy", "spam-wave"}
	var specs []scenario.Spec
	for _, n := range names {
		s, err := scenario.Preset(n)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, s)
	}
	opts := scenario.Options{BaseSeed: 42, Shards: 2, Scale: 1, DaysOverride: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := scenario.RunMatrix(specs, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if r.Agg.Classes.Total == 0 {
				b.Fatalf("scenario %s observed nothing", r.Spec.Name)
			}
		}
	}
}

// BenchmarkMatrixWarmStart measures what snapshot forking saves on
// BenchmarkMatrixRun's exact workload: the five presets share one
// setup phase (same accounts, leak date, mailbox size, locale), so
// the warm path simulates it once, freezes it through the binary
// codec and forks every scenario from the decoded snapshot, while
// the cold path re-simulates all five setups. Artifacts are
// byte-identical either way (TestMatrixWarmStartMatchesCold); only
// wall-clock differs.
func BenchmarkMatrixWarmStart(b *testing.B) {
	names := []string{"baseline", "paste-only", "forum-only", "malware-heavy", "spam-wave"}
	var specs []scenario.Spec
	for _, n := range names {
		s, err := scenario.Preset(n)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, s)
	}
	for _, load := range []struct {
		name    string
		days    int
		mailbox int
	}{
		// BenchmarkMatrixRun's exact workload: 60-day windows, the
		// paper's 90-message mailboxes. Setup is ~15% of a scenario.
		{"paper/days=60", 60, 0},
		// A setup-dominated matrix: wide mailboxes scanned over a
		// short window — the shape of corpus-heavy what-if sweeps,
		// where the shared prefix is most of the work.
		{"wide-mailbox/days=14", 14, 360},
	} {
		loaded := make([]scenario.Spec, len(specs))
		for i, s := range specs {
			s.MailboxSize = load.mailbox
			loaded[i] = s
		}
		for _, mode := range []struct {
			name string
			cold bool
		}{{"cold", true}, {"warm", false}} {
			b.Run(load.name+"/"+mode.name, func(b *testing.B) {
				opts := scenario.Options{BaseSeed: 42, Shards: 2, Scale: 1, DaysOverride: load.days, ColdStart: mode.cold}
				for i := 0; i < b.N; i++ {
					results, err := scenario.RunMatrix(loaded, opts)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
						if r.WarmStarted == mode.cold {
							b.Fatalf("scenario %s: WarmStarted=%v in %s mode", r.Spec.Name, r.WarmStarted, mode.name)
						}
					}
				}
			})
		}
	}
}

// BenchmarkSnapshotRoundTrip isolates the snapshot engine itself on
// the paper-scale deployment: freeze the post-setup state, encode it
// through the binary codec, decode, and resume a runnable experiment
// — the fixed cost a warm-started scenario pays instead of
// re-simulating its setup phase.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	exp, err := honeynet.New(honeynet.Config{Seed: 42, Shards: 2, SetupSeed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := exp.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bytesOut int
	for i := 0; i < b.N; i++ {
		st, err := exp.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		data := st.Encode()
		bytesOut = len(data)
		decoded, err := snapshot.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		resumed, err := honeynet.ResumeWith(decoded, exp.Config())
		if err != nil {
			b.Fatal(err)
		}
		if resumed.Shards() != exp.Shards() {
			b.Fatal("resumed shard count drifted")
		}
	}
	b.ReportMetric(float64(bytesOut), "snapshot-bytes")
}

// BenchmarkStreamingRun isolates the analysis phase the streaming
// pipeline replaces, over one cached full Table 1 run:
//
//   - stream: merge the per-shard aggregates the classifiers built
//     during the run (what Aggregates does) — O(shards) merge.
//   - batch: materialise the merged dataset, sort it, classify post
//     hoc and fold the same aggregates from it (the legacy shape).
//
// Both produce byte-identical reports (TestStreamMatchesBatchReports);
// the delta is pure merge+classify time and allocations.
func BenchmarkStreamingRun(b *testing.B) {
	exp, _ := dataset(b)
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg, err := exp.BuildAggregates()
			if err != nil {
				b.Fatal(err)
			}
			if agg.Classes.Total == 0 {
				b.Fatal("no classified accesses")
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ds := exp.Dataset()
			agg := analysis.AggregatesFromDataset(ds, analysis.StreamConfig{})
			if agg.Classes.Total == 0 {
				b.Fatal("no classified accesses")
			}
		}
	})
}
