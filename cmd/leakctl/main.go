// Command leakctl simulates leaking a batch of credentials to an
// outlet and reports the pickup schedule and any forum inquiries —
// useful for exploring outlet dynamics without a full deployment.
// With -creds it also writes the leaked "address password" lines in
// the format cmd/loadgen consumes, so a leak can drive live-fleet
// load.
//
// Usage:
//
//	leakctl [-outlet name] [-n N] [-days N] [-seed N] [-creds out.txt]
//
// Outlets: the names in outlets.DefaultSites (pastebin.example,
// hackforums.example, paste-ru-1.example, ...).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/livefleet"
	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
)

type config struct {
	outlet   string
	n        int
	days     int
	seed     int64
	credsOut string
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("leakctl", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.outlet, "outlet", "pastebin.example", "outlet to leak on")
	fs.IntVar(&cfg.n, "n", 20, "number of credentials to leak")
	fs.IntVar(&cfg.days, "days", 210, "days to simulate after the leak")
	fs.Int64Var(&cfg.seed, "seed", 1, "simulation seed")
	fs.StringVar(&cfg.credsOut, "creds", "", "write the leaked credentials to this file (loadgen format)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// leakCredentials builds the deterministic credential batch.
func leakCredentials(n int) []outlets.Credential {
	creds := make([]outlets.Credential, n)
	for i := range creds {
		creds[i] = outlets.Credential{
			Account:  fmt.Sprintf("honey%03d@honeymail.example", i),
			Password: fmt.Sprintf("hp-%06d", i),
		}
	}
	return creds
}

// run executes the leak simulation and writes the report; split from
// main for the integration tests.
func run(cfg config, out io.Writer) error {
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	sched := simtime.NewScheduler(clock)
	reg := outlets.NewRegistry(outlets.DefaultSites(), sched, rng.New(cfg.seed))
	o, ok := reg.Get(cfg.outlet)
	if !ok {
		var names []string
		for _, s := range outlets.DefaultSites() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown outlet %q; have %v", cfg.outlet, names)
	}

	creds := leakCredentials(cfg.n)
	if cfg.credsOut != "" {
		lf := make([]livefleet.Credential, len(creds))
		for i, c := range creds {
			lf[i] = livefleet.Credential{Address: c.Account, Password: c.Password}
		}
		f, err := os.Create(cfg.credsOut)
		if err != nil {
			return err
		}
		if err := livefleet.WriteCredentials(f, lf); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var mu sync.Mutex
	byAccount := map[string][]float64{}
	scheduled := o.Post(creds, func(p outlets.Pickup) {
		mu.Lock()
		defer mu.Unlock()
		d := p.At.Sub(p.PostedAt).Hours() / 24
		byAccount[p.Credential.Account] = append(byAccount[p.Credential.Account], d)
	})
	fmt.Fprintf(out, "posted %d credentials on %s; %d pickups scheduled\n", cfg.n, cfg.outlet, scheduled)

	sched.RunFor(time.Duration(cfg.days) * 24 * time.Hour)

	accounts := make([]string, 0, len(byAccount))
	for a := range byAccount {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	fmt.Fprintln(out, "\npickup days per credential:")
	for _, a := range accounts {
		fmt.Fprintf(out, "  %s:", a)
		for _, d := range byAccount[a] {
			fmt.Fprintf(out, " %.1f", d)
		}
		fmt.Fprintln(out)
	}
	untouched := cfg.n - len(byAccount)
	fmt.Fprintf(out, "\ncredentials never picked up: %d of %d\n", untouched, cfg.n)
	if inq := o.Inquiries(); len(inq) > 0 {
		fmt.Fprintf(out, "buyer inquiries received: %d\n", len(inq))
		for _, q := range inq {
			fmt.Fprintf(out, "  day %.1f  %s: %s\n", q.At.Sub(clock.Now().Add(-time.Duration(cfg.days)*24*time.Hour)).Hours()/24, q.From, q.Message)
		}
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
