// Command leakctl simulates leaking a batch of credentials to an
// outlet and reports the pickup schedule and any forum inquiries —
// useful for exploring outlet dynamics without a full deployment.
//
// Usage:
//
//	leakctl [-outlet name] [-n N] [-days N] [-seed N]
//
// Outlets: the names in outlets.DefaultSites (pastebin.example,
// hackforums.example, paste-ru-1.example, ...).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/outlets"
	"repro/internal/rng"
	"repro/internal/simtime"
)

func main() {
	var (
		outlet = flag.String("outlet", "pastebin.example", "outlet to leak on")
		n      = flag.Int("n", 20, "number of credentials to leak")
		days   = flag.Int("days", 210, "days to simulate after the leak")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	sched := simtime.NewScheduler(clock)
	reg := outlets.NewRegistry(outlets.DefaultSites(), sched, rng.New(*seed))
	o, ok := reg.Get(*outlet)
	if !ok {
		var names []string
		for _, s := range outlets.DefaultSites() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		log.Fatalf("unknown outlet %q; have %v", *outlet, names)
	}

	creds := make([]outlets.Credential, *n)
	for i := range creds {
		creds[i] = outlets.Credential{
			Account:  fmt.Sprintf("honey%03d@honeymail.example", i),
			Password: fmt.Sprintf("hp-%06d", i),
		}
	}

	var mu sync.Mutex
	byAccount := map[string][]float64{}
	scheduled := o.Post(creds, func(p outlets.Pickup) {
		mu.Lock()
		defer mu.Unlock()
		d := p.At.Sub(p.PostedAt).Hours() / 24
		byAccount[p.Credential.Account] = append(byAccount[p.Credential.Account], d)
	})
	fmt.Printf("posted %d credentials on %s; %d pickups scheduled\n", *n, *outlet, scheduled)

	sched.RunFor(time.Duration(*days) * 24 * time.Hour)

	accounts := make([]string, 0, len(byAccount))
	for a := range byAccount {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	fmt.Println("\npickup days per credential:")
	for _, a := range accounts {
		fmt.Printf("  %s:", a)
		for _, d := range byAccount[a] {
			fmt.Printf(" %.1f", d)
		}
		fmt.Println()
	}
	untouched := *n - len(byAccount)
	fmt.Printf("\ncredentials never picked up: %d of %d\n", untouched, *n)
	if inq := o.Inquiries(); len(inq) > 0 {
		fmt.Printf("buyer inquiries received: %d\n", len(inq))
		for _, q := range inq {
			fmt.Printf("  day %.1f  %s: %s\n", q.At.Sub(clock.Now().Add(-time.Duration(*days)*24*time.Hour)).Hours()/24, q.From, q.Message)
		}
	}
}
