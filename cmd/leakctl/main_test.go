package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/livefleet"
)

// TestRunWritesCredsFile: -creds emits the leak in loadgen format.
func TestRunWritesCredsFile(t *testing.T) {
	credsPath := filepath.Join(t.TempDir(), "leak.txt")
	var out strings.Builder
	err := run(config{outlet: "pastebin.example", n: 5, days: 30, seed: 1, credsOut: credsPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "posted 5 credentials on pastebin.example") {
		t.Fatalf("report missing post line:\n%s", out.String())
	}
	f, err := os.Open(credsPath)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := livefleet.ReadCredentials(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(creds) != 5 {
		t.Fatalf("wrote %d creds, want 5", len(creds))
	}
	if creds[0].Address != "honey000@honeymail.example" || creds[0].Password != "hp-000000" {
		t.Fatalf("first cred %+v", creds[0])
	}
}

// TestRunDeterministicPickups: the same seed schedules the same
// pickup report.
func TestRunDeterministicPickups(t *testing.T) {
	var a, b strings.Builder
	cfg := config{outlet: "pastebin.example", n: 10, days: 60, seed: 7}
	if err := run(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different reports")
	}
}

func TestRunUnknownOutlet(t *testing.T) {
	var out strings.Builder
	if err := run(config{outlet: "nope.example", n: 1, days: 1, seed: 1}, &out); err == nil {
		t.Fatal("unknown outlet accepted")
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-outlet", "hackforums.example", "-n", "3", "-creds", "x.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.outlet != "hackforums.example" || cfg.n != 3 || cfg.credsOut != "x.txt" {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
