package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/honeynet"
)

// TestValidateShards: a shard count beyond the deployment's accounts
// is an error naming both numbers; anything up to the account count is
// accepted.
func TestValidateShards(t *testing.T) {
	cases := []struct {
		shards, accounts int
		wantErr          bool
	}{
		{1, 100, false},
		{100, 100, false},
		{101, 100, true},
		{4, 1, true},
		{1, 1, false},
	}
	for _, c := range cases {
		err := validateShards(c.shards, c.accounts)
		if (err != nil) != c.wantErr {
			t.Errorf("validateShards(%d, %d) = %v, wantErr=%v", c.shards, c.accounts, err, c.wantErr)
		}
		if err != nil {
			for _, needle := range []string{"-shards"} {
				if !strings.Contains(err.Error(), needle) {
					t.Errorf("error %q does not mention %q", err, needle)
				}
			}
		}
	}
}

// TestValidateShardsAgainstPlan pins the validation to the real plan
// arithmetic: the paper's Table 1 plan deploys 100 accounts per scale
// unit, so -shards 101 must fail at scale 1 and pass at scale 2.
func TestValidateShardsAgainstPlan(t *testing.T) {
	base := honeynet.PlannedAccounts(honeynet.Config{})
	if base != 100 {
		t.Fatalf("default plan deploys %d accounts, want 100", base)
	}
	if err := validateShards(101, base); err == nil {
		t.Fatal("101 shards over 100 accounts accepted")
	}
	scaled := honeynet.PlannedAccounts(honeynet.Config{ScaleFactor: 2})
	if scaled != 200 {
		t.Fatalf("scale-2 plan deploys %d accounts, want 200", scaled)
	}
	if err := validateShards(101, scaled); err != nil {
		t.Fatalf("101 shards over 200 accounts rejected: %v", err)
	}
}

// TestValidateWorkers: both worker-count flags (-workers and
// -setup-workers) reject values below one with an error naming the
// flag; any positive budget is accepted (worker counts never change
// results, only wall-clock).
func TestValidateWorkers(t *testing.T) {
	for _, flagName := range []string{"workers", "setup-workers"} {
		for _, c := range []struct {
			n       int
			wantErr bool
		}{
			{1, false},
			{4, false},
			{128, false},
			{0, true},
			{-3, true},
		} {
			err := validateWorkers(flagName, c.n)
			if (err != nil) != c.wantErr {
				t.Errorf("validateWorkers(%q, %d) = %v, wantErr=%v", flagName, c.n, err, c.wantErr)
			}
			if err == nil {
				continue
			}
			if !errors.Is(err, errBadWorkers) {
				t.Errorf("validateWorkers(%q, %d) not wrapped in errBadWorkers: %v", flagName, c.n, err)
			}
			if !strings.Contains(err.Error(), "-"+flagName) {
				t.Errorf("error %q does not name -%s", err, flagName)
			}
		}
	}
}
