// Command honeynet runs the full honey-account experiment and prints
// the paper's tables and figures, or runs declarative scenario
// variants (alone or as a concurrent matrix) and compares them.
//
// Usage:
//
//	honeynet [-seed N] [-days N] [-experiment id] [-resamples N]
//	         [-shards N] [-scale K] [-stream=bool] [-dirty-tracking=bool]
//	         [-setup-seed N] [-checkpoint file] [-resume file]
//	         [-cpuprofile file] [-memprofile file]
//	honeynet -scenario <name|file> [-out dir] [...]
//	honeynet -matrix <name|file>[,<name|file>...] [-out dir] [-workers N]
//	         [-warm-start=bool] [...]
//
// Experiment ids: overview, table1, fig1, fig2, fig3, fig4, fig5a,
// fig5b, cvm, table2, sysconfig, cases, sophistication, all — plus
// defender when -defender-cadence arms the C3 detection loop, which
// races provider-side leak detection (time-to-detection) against the
// attackers' time-to-exploit.
//
// -shards partitions the run across N parallel schedulers (0 selects
// one per CPU); the output for a fixed seed is identical at any shard
// count. A shard count larger than the deployment's account count is
// rejected up front with a non-zero exit. -cpuprofile/-memprofile
// write pprof profiles of the run (the heap profile is taken post-GC
// at exit, so it shows live fleet state, not transient garbage). -scale replicates the Table 1 plan K×, simulating 100·K
// honey accounts. -stream (default true) classifies accesses on the
// fly inside each shard and reports from merged per-shard aggregates;
// -stream=false selects the legacy path that merges every access
// record into one dataset before analysing. Both render byte-identical
// reports for the same seed. -dirty-tracking (default true)
// version-gates the activity-page scraper so quiet accounts are
// skipped without a login; -dirty-tracking=false restores the
// scrape-everything behaviour (identical reports, much slower at
// scale).
//
// -checkpoint freezes the experiment at its post-setup boundary
// (accounts created, mailboxes seeded, monitoring armed, nothing run)
// into a deterministic snapshot file, then continues the run.
// -resume loads such a snapshot instead of re-simulating setup; the
// post-fork flags (-seed, -days, -shards, -stream, -dirty-tracking)
// may be re-specified to diverge from the checkpointed run —
// -setup-seed N gives setup its own seed stream so different -seed
// values can fork the same accounts. A resumed run renders
// byte-identically to an uninterrupted one (TestSnapshotInvariance).
//
// -scenario runs one declarative experiment variant (an embedded
// preset name such as "baseline" or "paste-only", or a TOML/JSON spec
// file) and prints its full report. -matrix runs several variants
// concurrently on one worker budget (-workers, default NumCPU) and
// prints the comparative report: one column per scenario, deltas
// against the first column. Scenarios whose setup phases agree are
// warm-started from one shared snapshot (-warm-start=false simulates
// every setup; identical output either way). -out writes one
// canonical JSON aggregate artifact per scenario for cross-run
// diffing; the directory is created (and failures reported, non-zero)
// before any simulation starts. With -scenario/-matrix the -days
// flag only overrides the specs' windows when set explicitly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/snapshot"
)

func main() {
	var (
		seed         = flag.Int64("seed", 42, "deterministic experiment seed")
		days         = flag.Int("days", 236, "observation window in days (paper: 236)")
		experiment   = flag.String("experiment", "all", "which artifact to print (overview, table1, fig1..fig5b, cvm, table2, sysconfig, cases, sophistication, all)")
		resamples    = flag.Int("resamples", 2000, "Cramér–von Mises permutation resamples")
		shards       = flag.Int("shards", 1, "parallel shard schedulers (0 = one per CPU; output is shard-count invariant)")
		scale        = flag.Int("scale", 1, "replicate the deployment plan K× (simulates 100·K accounts for Table 1)")
		stream       = flag.Bool("stream", true, "classify accesses on the fly per shard and report from merged aggregates (false = legacy full-dataset merge)")
		dirty        = flag.Bool("dirty-tracking", true, "version-gate the activity-page scraper so quiet accounts cost ~zero per tick (false = log into every account every tick; identical reports)")
		scen         = flag.String("scenario", "", "run one scenario (preset name or TOML/JSON file) and print its full report")
		matrix       = flag.String("matrix", "", "comma-separated scenarios to run concurrently and compare (first is the baseline column)")
		outDir       = flag.String("out", "", "directory for per-scenario JSON aggregate artifacts")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "matrix-wide worker budget shared by all scenarios (default: one per CPU)")
		setupWorkers = flag.Int("setup-workers", runtime.GOMAXPROCS(0), "goroutines for the parallel account-setup layout selected by -setup-seed; never changes results (default: one per CPU)")
		setupSeed    = flag.Int64("setup-seed", 0, "give the setup phase its own seed stream so -resume can fork the same accounts under different -seed values (0 = setup shares the experiment seed)")
		checkpoint   = flag.String("checkpoint", "", "write a post-setup snapshot to this file, then continue the run")
		resumeFile   = flag.String("resume", "", "resume from a post-setup snapshot file instead of re-simulating setup")
		warmStart    = flag.Bool("warm-start", true, "fork matrix scenarios that share a setup phase from one snapshot (false = simulate every setup; identical output)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file when the run completes")
		defCadence   = flag.Duration("defender-cadence", 0, "arm the C3 defender loop at this check cadence (0 = no defender, the paper's deployment); adds the 'defender' report section")
		c3Bits       = flag.Int("c3-bucket-bits", 0, "k-anonymity prefix width of the C3 index fragments (0 = engine default; needs -defender-cadence)")
		c3Variants   = flag.Bool("c3-variants", false, "index MIGP-style password variants in the C3 fragments (needs -defender-cadence)")
	)
	flag.Parse()

	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	if *scale < 1 {
		*scale = 1
	}
	if err := validateWorkers("workers", *workers); err != nil {
		log.Fatal(err)
	}
	if err := validateWorkers("setup-workers", *setupWorkers); err != nil {
		log.Fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	if *scen != "" || *matrix != "" {
		if *checkpoint != "" || *resumeFile != "" {
			log.Fatal("-checkpoint/-resume apply to the plain experiment; scenario matrices checkpoint their shared setups automatically (see -warm-start)")
		}
		daysExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "days" {
				daysExplicit = true
			}
		})
		opts := scenario.Options{
			BaseSeed:  *seed,
			Shards:    *shards,
			Scale:     *scale,
			Workers:   *workers,
			ColdStart: !*warmStart,
		}
		if daysExplicit {
			opts.DaysOverride = *days
		}
		if *scen != "" && *matrix != "" {
			log.Fatal("use either -scenario or -matrix, not both")
		}
		// Surface a broken -out before minutes of simulation, not after.
		prepareOutDir(*outDir)
		if *scen != "" {
			runScenario(*scen, opts, *resamples, *outDir)
		} else {
			runMatrix(strings.Split(*matrix, ","), opts, *outDir)
		}
		return
	}

	var exp *honeynet.Experiment
	mode := "streaming"
	if !*stream {
		mode = "batch"
	}
	start := time.Now()
	if *resumeFile != "" {
		if *checkpoint != "" {
			// A resumed run is already past the post-setup boundary;
			// silently skipping the write would strand the user
			// without the file they asked for.
			log.Fatal("-checkpoint cannot be combined with -resume: the snapshot freezes the post-setup boundary, which a resumed run has already crossed (re-run with -checkpoint alone to produce one)")
		}
		st, err := snapshot.ReadFile(*resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		if st.Config.CustomSites || st.Config.CustomPopulations || st.Config.CustomLocale {
			log.Fatal("honeynet: snapshot depends on a scenario-provided outlet catalogue, calibration or locale; re-run the scenario matrix instead (its warm starts resume such snapshots)")
		}
		cfg, err := honeynet.ConfigFromSnapshot(st)
		if err != nil {
			log.Fatal(err)
		}
		// Explicitly-set flags override the snapshot's post-fork
		// fields; setup-relevant fields stay fingerprint-pinned
		// (ResumeWith rejects mismatches).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				cfg.Seed = *seed
			case "setup-seed":
				cfg.SetupSeed = *setupSeed
			case "setup-workers":
				cfg.SetupWorkers = *setupWorkers
			case "days":
				cfg.Duration = time.Duration(*days) * 24 * time.Hour
			case "shards":
				cfg.Shards = *shards
			case "scale":
				cfg.ScaleFactor = *scale
			case "stream":
				cfg.DisableStreaming = !*stream
			case "dirty-tracking":
				cfg.DisableDirtyTracking = !*dirty
			case "defender-cadence":
				cfg.DefenderCadence = *defCadence
			case "c3-bucket-bits":
				cfg.C3BucketBits = *c3Bits
			case "c3-variants":
				cfg.C3Variants = *c3Variants
			}
		})
		if err := validateShards(cfg.Shards, len(st.Accounts)); err != nil {
			log.Fatal(err)
		}
		exp, err = honeynet.ResumeWith(st, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// The snapshot (possibly flag-overridden) decides the engine
		// mode from here on, not the -stream flag default.
		if cfg.DisableStreaming {
			mode = "batch"
		} else {
			mode = "streaming"
		}
		fmt.Fprintf(os.Stderr, "resumed %d accounts from %s (seed %d, %d shard(s), %s)...\n",
			len(st.Accounts), *resumeFile, cfg.Seed, exp.Shards(), mode)
		if err := exp.Leak(); err != nil {
			log.Fatal(err)
		}
		if err := exp.Run(); err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := honeynet.Config{
			Seed:                 *seed,
			SetupSeed:            *setupSeed,
			SetupWorkers:         *setupWorkers,
			Duration:             time.Duration(*days) * 24 * time.Hour,
			Shards:               *shards,
			ScaleFactor:          *scale,
			DisableStreaming:     !*stream,
			DisableDirtyTracking: !*dirty,
			DefenderCadence:      *defCadence,
			C3BucketBits:         *c3Bits,
			C3Variants:           *c3Variants,
		}
		if err := validateShards(*shards, honeynet.PlannedAccounts(cfg)); err != nil {
			log.Fatal(err)
		}
		var err error
		exp, err = honeynet.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "running %d-day deployment (seed %d, %d shard(s), scale %d×, %s)...\n",
			*days, *seed, exp.Shards(), *scale, mode)
		if err := exp.Setup(); err != nil {
			log.Fatal(err)
		}
		if *checkpoint != "" {
			// Streamed account by account: checkpoint memory stays
			// O(block) whatever -scale made the fleet.
			if err := exp.WriteSnapshotFile(*checkpoint); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "post-setup checkpoint written to %s (%d accounts)\n",
				*checkpoint, len(exp.Assignments()))
		}
		if err := exp.Leak(); err != nil {
			log.Fatal(err)
		}
		if err := exp.Run(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d events)\n\n",
		time.Since(start).Round(time.Millisecond), exp.ShardSet().Fired())

	table1 := func() string {
		counts := map[int]int{}
		for _, a := range exp.Assignments() {
			counts[a.Group.ID]++
		}
		var rows []report.Table1Row
		for id := 1; id <= 5; id++ {
			if counts[id] > 0 {
				rows = append(rows, report.Table1Row{Group: id, Count: counts[id], Label: honeynet.PaperGroupLabel(id)})
			}
		}
		return report.Table1(rows)
	}
	cases := func(draftCopies int) string {
		return report.CaseStudies(exp.Blackmailers(), draftCopies, len(exp.AllInquiries()))
	}

	// Render from the experiment's effective config: a resumed run's
	// engine mode and seed come from the snapshot (determinism
	// guarantee #5 — the resumed report must byte-match the
	// uninterrupted run), not from this process's flag defaults.
	runCfg := exp.Config()
	sigSeed := runCfg.Seed

	var sections map[string]func() string
	if !runCfg.DisableStreaming {
		// Streaming: every shard classified its accesses as the run
		// advanced; merge the per-shard aggregates (O(shards)) and
		// render from them — no merged dataset is ever materialised.
		agg, err := exp.Aggregates()
		if err != nil {
			log.Fatal(err)
		}
		sections = map[string]func() string{
			"overview":  func() string { return report.Overview(agg.Overview()) },
			"table1":    table1,
			"fig1":      func() string { return report.Figure1Sketches(agg.Durations) },
			"fig2":      func() string { return report.Figure2(agg.PerOutlet) },
			"fig3":      func() string { return report.Figure3Sketches(agg.TimeToAccess) },
			"fig4":      func() string { return report.Figure4Buckets(agg.Timeline, agg.TimelineMax) },
			"fig5a":     func() string { return report.Figure5("UK/London", agg.MedianRadii(analysis.HintUK)) },
			"fig5b":     func() string { return report.Figure5("US/Pontiac", agg.MedianRadii(analysis.HintUS)) },
			"cvm":       func() string { return report.Significance(agg.LocationSignificance(*resamples, sigSeed)) },
			"sysconfig": func() string { return report.SystemConfig(agg.ConfigRows()) },
			"table2": func() string {
				r := agg.KeywordInference(exp.SeededContents(), exp.DropWords())
				return report.Table2(r.TopSearched(10), r.TopCorpus(10))
			},
			"cases": func() string { return cases(len(agg.Drafts)) },
			"sophistication": func() string {
				return report.Sophistication(agg.ConfigRows(), agg.LocationSignificance(*resamples, sigSeed))
			},
		}
	} else {
		ds := exp.Dataset()
		cs := analysis.Classify(ds, analysis.ClassifyOptions{})
		sections = map[string]func() string{
			"overview":  func() string { return report.Overview(analysis.Summarize(ds)) },
			"table1":    table1,
			"fig1":      func() string { return report.Figure1(analysis.DurationsByClass(cs)) },
			"fig2":      func() string { return report.Figure2(analysis.ByOutlet(cs)) },
			"fig3":      func() string { return report.Figure3(analysis.TimeToFirstAccess(ds)) },
			"fig4":      func() string { return report.Figure4(analysis.Timeline(ds)) },
			"fig5a":     func() string { return report.Figure5("UK/London", analysis.MedianRadii(ds, analysis.HintUK)) },
			"fig5b":     func() string { return report.Figure5("US/Pontiac", analysis.MedianRadii(ds, analysis.HintUS)) },
			"cvm":       func() string { return report.Significance(analysis.LocationSignificance(ds, *resamples, sigSeed)) },
			"sysconfig": func() string { return report.SystemConfig(analysis.SystemConfiguration(ds)) },
			"table2": func() string {
				r := analysis.KeywordInference(ds, exp.DropWords())
				return report.Table2(r.TopSearched(10), r.TopCorpus(10))
			},
			"cases": func() string {
				drafts := 0
				for _, a := range ds.Actions {
					if a.Kind == analysis.ActionDraft {
						drafts++
					}
				}
				return cases(drafts)
			},
			"sophistication": func() string {
				return report.Sophistication(
					analysis.SystemConfiguration(ds),
					analysis.LocationSignificance(ds, *resamples, sigSeed))
			},
		}
	}
	order := []string{
		"overview", "table1", "fig1", "fig2", "fig3", "fig4",
		"sysconfig", "fig5a", "fig5b", "cvm", "table2", "cases", "sophistication",
	}
	// The defender section exists only when the loop is armed, so a
	// defender-free run prints exactly the pre-C3 report bytes.
	if exp.DefenderEnabled() {
		sections["defender"] = func() string {
			return report.Defender(scenario.DefenderRows(exp.DefenderOutcomes()))
		}
		order = append(order, "defender")
	}

	want := strings.ToLower(*experiment)
	if want == "all" {
		for _, id := range order {
			fmt.Printf("===== %s =====\n%s\n", id, sections[id]())
		}
		return
	}
	section, ok := sections[want]
	if !ok {
		log.Fatalf("unknown experiment %q (have: %s, all)", want, strings.Join(order, ", "))
	}
	fmt.Println(section())
}

// runScenario executes one declarative variant and prints its full
// report.
func runScenario(arg string, opts scenario.Options, resamples int, outDir string) {
	spec, err := scenario.Resolve(arg)
	if err != nil {
		log.Fatal(err)
	}
	seed := opts.BaseSeed
	if spec.Seed != nil {
		seed = *spec.Seed
	}
	fmt.Fprintf(os.Stderr, "running scenario %s (seed %d, %d shard(s), scale %d×)...\n",
		spec.Name, seed, opts.Shards, opts.Scale)
	start := time.Now()
	res := scenario.Run(spec, seed, opts)
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d events)\n\n", time.Since(start).Round(time.Millisecond), res.Events)
	out, err := scenario.RenderFullReport(res, resamples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	writeArtifacts(outDir, []*scenario.Result{res})
}

// runMatrix executes several variants concurrently on one shared
// worker budget and prints the comparative report.
func runMatrix(args []string, opts scenario.Options, outDir string) {
	var specs []scenario.Spec
	for _, arg := range args {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		spec, err := scenario.Resolve(arg)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
	}
	fmt.Fprintf(os.Stderr, "running %d-scenario matrix (base seed %d, %d shard(s)/scenario, scale %d×)...\n",
		len(specs), opts.BaseSeed, opts.Shards, opts.Scale)
	start := time.Now()
	results, err := scenario.RunMatrix(specs, opts)
	if err != nil {
		log.Fatal(err)
	}
	failed := false
	var cols []report.ScenarioColumn
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s FAILED: %v\n", r.Spec.Name, r.Err)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "scenario %-20s seed %-20d %8d events  %v\n",
			r.Spec.Name, r.Seed, r.Events, r.Elapsed.Round(time.Millisecond))
		cols = append(cols, report.ScenarioColumn{Name: r.Spec.Name, Agg: r.Agg})
	}
	fmt.Fprintf(os.Stderr, "matrix done in %v\n\n", time.Since(start).Round(time.Millisecond))
	// The first scenario is the delta reference: if it failed, every
	// delta would silently rebase on whichever scenario survived, so
	// refuse to render the comparison at all.
	if results[0].Err != nil {
		fmt.Fprintln(os.Stderr, "baseline scenario failed; not rendering the comparative report")
	} else {
		fmt.Print(report.Comparative(cols))
	}
	writeArtifacts(outDir, results)
	if failed {
		os.Exit(1)
	}
}

// errBadWorkers rejects worker budgets below one: zero workers would
// deadlock the pool and a negative count is always a typo, so both
// fail fast instead of being silently clamped.
var errBadWorkers = errors.New("worker counts must be at least 1 (omit the flag for the default, one per CPU)")

// validateWorkers applies errBadWorkers to one worker-count flag,
// naming the flag and value in the error.
func validateWorkers(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("-%s %d: %w", flagName, n, errBadWorkers)
	}
	return nil
}

// validateShards rejects shard counts the deployment cannot fill: a
// shard with zero accounts would silently run an empty scheduler, so
// the mistake fails fast with the numbers spelled out instead.
func validateShards(shards, accounts int) error {
	if shards > accounts {
		return fmt.Errorf("-shards %d exceeds the deployment's %d account(s); every shard needs at least one account (lower -shards or raise -scale)", shards, accounts)
	}
	return nil
}

// writeMemProfile snapshots the live heap (post-GC) to path.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("-memprofile: %v", err)
	}
	runtime.GC() // materialize only live objects in the profile
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatalf("-memprofile: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("-memprofile: %v", err)
	}
}

// prepareOutDir creates the artifact directory up front so a bad
// -out path fails the invocation immediately instead of after the
// whole matrix has simulated. (The old behaviour surfaced the error
// only at write time; a mid-matrix failure could leave partial
// artifacts behind a zero exit for the scenarios already written.)
func prepareOutDir(dir string) {
	if dir == "" {
		return
	}
	// MkdirAll covers every failure mode, including any path
	// component (the leaf too) existing as a non-directory.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("-out %s: %v", dir, err)
	}
}

// writeArtifacts writes one JSON artifact per successful result and
// exits non-zero unless every successful scenario produced one — a
// partial artifact directory must never look like a clean run.
func writeArtifacts(outDir string, results []*scenario.Result) {
	if outDir == "" {
		return
	}
	paths, err := scenario.WriteArtifacts(outDir, results)
	if err != nil {
		log.Fatal(err)
	}
	want := 0
	for _, r := range results {
		if r != nil && r.Err == nil {
			want++
		}
	}
	if len(paths) != want {
		log.Fatalf("-out %s: wrote %d artifact(s) for %d successful scenario(s)", outDir, len(paths), want)
	}
	fmt.Fprintf(os.Stderr, "wrote %d artifact(s) to %s\n", len(paths), outDir)
}
