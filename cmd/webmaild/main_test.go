package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/livefleet"
	"repro/internal/snapshot"
	"repro/internal/webmail"
)

// writeTestSnapshot builds a small snapshot file for boot tests.
func writeTestSnapshot(t *testing.T, nAccounts int) string {
	t.Helper()
	st := &snapshot.State{}
	base := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nAccounts; i++ {
		addr := fmt.Sprintf("snap%03d@honeymail.example", i)
		st.Accounts = append(st.Accounts, snapshot.Account{
			Address: addr, Password: fmt.Sprintf("sp-%03d", i), Owner: "Owner",
			SendFrom: addr, NextID: 3,
			Messages: []snapshot.Message{
				{ID: 1, Folder: "inbox", From: "a@x.example", To: addr, Subject: "hello payment", Body: "b", DateNS: base.UnixNano()},
				{ID: 2, Folder: "sent", From: addr, To: "a@x.example", Subject: "re", Body: "b2", DateNS: base.Add(time.Hour).UnixNano()},
			},
		})
	}
	path := filepath.Join(t.TempDir(), "boot.snap")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func wireLogin(t *testing.T, addr, account, password string) *webmail.Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := webmail.Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	resp, err := c.Do(webmail.Request{
		Op: "login", Account: account, Password: password,
		IP: "203.0.113.11", City: "Berlin", Country: "DE", Lat: 52.52, Lon: 13.405,
		UserAgent: "cmdtest/1",
	})
	if err != nil || !resp.OK {
		t.Fatalf("login %s: %v %+v", account, err, resp)
	}
	return c
}

// TestStartDemoMode: the generated-accounts path serves real sessions
// on an ephemeral port.
func TestStartDemoMode(t *testing.T) {
	credsPath := filepath.Join(t.TempDir(), "creds.txt")
	inst, err := start(config{
		addr: "127.0.0.1:0", accounts: 3, mailbox: 5, seed: 1,
		partitions: 1, abuse: true, credsOut: credsPath,
		drainTimeout: 10 * time.Second,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	f, err := os.Open(credsPath)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := livefleet.ReadCredentials(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(creds) != 3 {
		t.Fatalf("wrote %d creds, want 3", len(creds))
	}
	c := wireLogin(t, inst.Addr, creds[0].Address, creds[0].Password)
	resp, err := c.Do(webmail.Request{Op: "list", Folder: "inbox"})
	if err != nil || !resp.OK {
		t.Fatalf("list: %v %+v", err, resp)
	}
}

// TestSnapshotBootRoundTrip: webmaild -snapshot -partition restores
// exactly its shard's slice and serves it over the wire.
func TestSnapshotBootRoundTrip(t *testing.T) {
	path := writeTestSnapshot(t, 10)
	const parts = 2
	var all []livefleet.Credential
	for part := 0; part < parts; part++ {
		credsPath := filepath.Join(t.TempDir(), fmt.Sprintf("creds-%d.txt", part))
		inst, err := start(config{
			addr: "127.0.0.1:0", snapshotPath: path,
			partition: part, partitions: parts, abuse: true,
			credsOut: credsPath, drainTimeout: 10 * time.Second,
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { inst.Close() })
		f, err := os.Open(credsPath)
		if err != nil {
			t.Fatal(err)
		}
		creds, err := livefleet.ReadCredentials(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, cred := range creds {
			if got := webmail.PartitionIndex(cred.Address, parts); got != part {
				t.Fatalf("%s restored on shard %d, hashes to %d", cred.Address, part, got)
			}
			c := wireLogin(t, inst.Addr, cred.Address, cred.Password)
			resp, err := c.Do(webmail.Request{Op: "read", ID: 1})
			if err != nil || !resp.OK || resp.Message == nil || !strings.Contains(resp.Message.Subject, "payment") {
				t.Fatalf("read restored message: %v %+v", err, resp)
			}
		}
		all = append(all, creds...)
	}
	if len(all) != 10 {
		t.Fatalf("shards restored %d accounts total, want 10", len(all))
	}
}

// TestConcurrentWireClients: many sessions at once against one
// instance, meant for the -race matrix.
func TestConcurrentWireClients(t *testing.T) {
	path := writeTestSnapshot(t, 8)
	inst, err := start(config{
		addr: "127.0.0.1:0", snapshotPath: path, partitions: 1,
		abuse: true, drainTimeout: 10 * time.Second,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			account := fmt.Sprintf("snap%03d@honeymail.example", i)
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			c, err := webmail.Dial(ctx, inst.Addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			resp, err := c.Do(webmail.Request{
				Op: "login", Account: account, Password: fmt.Sprintf("sp-%03d", i),
				IP: "203.0.113.12", City: "Berlin", Country: "DE", Lat: 52.52, Lon: 13.405,
			})
			if err != nil || !resp.OK {
				errs <- fmt.Errorf("login %s: %v %+v", account, err, resp)
				return
			}
			for j := 0; j < 25; j++ {
				if resp, err = c.Do(webmail.Request{Op: "search", Query: "payment"}); err != nil || !resp.OK {
					errs <- fmt.Errorf("search %s: %v %+v", account, err, resp)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShutdownDrains: Shutdown closes the listener and idle
// connections and returns cleanly; later requests fail.
func TestShutdownDrains(t *testing.T) {
	credsPath := filepath.Join(t.TempDir(), "creds.txt")
	inst, err := start(config{
		addr: "127.0.0.1:0", accounts: 1, mailbox: 2, seed: 1,
		partitions: 1, abuse: true, credsOut: credsPath,
		drainTimeout: 10 * time.Second,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(credsPath)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := livefleet.ReadCredentials(f)
	f.Close()
	if err != nil || len(creds) == 0 {
		t.Fatalf("creds: %v (%d)", err, len(creds))
	}
	wireLogin(t, inst.Addr, creds[0].Address, creds[0].Password)
	if err := inst.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if nc, err := webmail.Dial(ctx, inst.Addr); err == nil {
		if _, err := nc.Do(webmail.Request{Op: "list"}); err == nil {
			t.Fatal("request after shutdown succeeded")
		}
		nc.Close()
	}
}

// TestRouterMode: webmaild -router fronts two snapshot-booted shards
// and routes sessions to whichever shard owns the account.
func TestRouterMode(t *testing.T) {
	path := writeTestSnapshot(t, 10)
	const parts = 2
	shardAddrs := make([]string, parts)
	for part := 0; part < parts; part++ {
		inst, err := start(config{
			addr: "127.0.0.1:0", snapshotPath: path,
			partition: part, partitions: parts, abuse: true,
			drainTimeout: 10 * time.Second,
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { inst.Close() })
		shardAddrs[part] = inst.Addr
	}
	var routerOut strings.Builder
	router, err := start(config{
		addr: "127.0.0.1:0", routerMode: true,
		shards:         strings.Join(shardAddrs, ","),
		healthInterval: 50 * time.Millisecond,
		healthTimeout:  time.Second,
		drainTimeout:   10 * time.Second,
	}, &routerOut)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	// Every account is reachable through the single router address,
	// regardless of which shard restored it.
	for i := 0; i < 10; i++ {
		account := fmt.Sprintf("snap%03d@honeymail.example", i)
		c := wireLogin(t, router.Addr, account, fmt.Sprintf("sp-%03d", i))
		resp, err := c.Do(webmail.Request{Op: "list", Folder: "inbox"})
		if err != nil || !resp.OK || len(resp.Messages) != 1 {
			t.Fatalf("list %s via router: %v %+v", account, err, resp)
		}
	}
	if err := router.Shutdown(context.Background()); err != nil {
		t.Fatalf("router drain: %v", err)
	}
	// A draining router reports per-shard health; both shards stayed up
	// the whole run.
	if out := routerOut.String(); !strings.Contains(out, "Fleet health (router)") ||
		strings.Contains(out, " down ") || !strings.Contains(out, " up ") {
		t.Fatalf("drain output missing healthy fleet-health section:\n%s", out)
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-snapshot", "x.snap", "-partition", "1", "-partitions", "4", "-abuse=false"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:9999" || cfg.snapshotPath != "x.snap" || cfg.partition != 1 || cfg.partitions != 4 || cfg.abuse {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if _, err := parseFlags([]string{"-router"}); err == nil {
		t.Fatal("-router without -shards accepted")
	}
	rcfg, err := parseFlags([]string{"-router", "-shards", "a:1,b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if !rcfg.routerMode || rcfg.shards != "a:1,b:2" {
		t.Fatalf("parsed %+v", rcfg)
	}
	if rcfg.healthInterval != time.Second || rcfg.healthTimeout != time.Second {
		t.Fatalf("health defaults: %+v", rcfg)
	}
	hcfg, err := parseFlags([]string{"-router", "-shards", "a:1", "-health-interval", "250ms", "-health-timeout", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	if hcfg.healthInterval != 250*time.Millisecond || hcfg.healthTimeout != 2*time.Second {
		t.Fatalf("parsed health flags: %+v", hcfg)
	}
}
