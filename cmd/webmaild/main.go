// Command webmaild serves the webmail platform over TCP with a set of
// demo honey accounts, for driving with the wire protocol (see
// examples/live-servers for a scripted client).
//
// Usage:
//
//	webmaild [-addr host:port] [-accounts N] [-mailbox N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/corpus"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8025", "listen address")
		accounts = flag.Int("accounts", 10, "demo honey accounts to create")
		mailbox  = flag.Int("mailbox", 40, "seeded messages per account")
		seed     = flag.Int64("seed", 1, "content seed")
	)
	flag.Parse()

	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	svc := webmail.NewService(webmail.Config{Clock: clock})

	src := rng.New(*seed)
	personas := corpus.NewPersonas(src.ForkNamed("personas"), *accounts, "honeymail.example")
	gen := corpus.NewGenerator(src.ForkNamed("corpus"), corpus.DefaultConfig())
	start := clock.Now().Add(-120 * 24 * time.Hour)
	for i, p := range personas {
		password := fmt.Sprintf("hp-%04d", i)
		if err := svc.CreateAccount(p.Email, password, p.FullName()); err != nil {
			log.Fatal(err)
		}
		for _, m := range gen.Mailbox(p, *mailbox, start, clock.Now()) {
			folder := webmail.FolderInbox
			if m.From == p.Email {
				folder = webmail.FolderSent
			}
			if _, err := svc.Seed(p.Email, folder, m.From, m.To, m.Subject, m.Body, m.Date); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("account %-45s password %s\n", p.Email, password)
	}

	srv := webmail.NewServer(svc)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("webmaild listening on", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("shutting down")
	srv.Close()
}
