// Command webmaild serves the webmail platform over TCP — either as a
// standalone demo (generated honey accounts) or as one shard of a live
// fleet booted from a v4 snapshot file. On SIGTERM/SIGINT it drains:
// the listener closes, idle connections drop, and in-flight requests
// finish before the process exits.
//
// Usage:
//
//	webmaild [-addr host:port] [-accounts N] [-mailbox N] [-seed N]
//	webmaild -snapshot state.snap [-partition I -partitions N] [-abuse=false] [-creds out.txt]
//	webmaild -router -shards host:port,host:port [-addr host:port]
//	         [-health-interval D] [-health-timeout D]
//
// With -snapshot, only the accounts that webmail.PartitionIndex places
// on -partition of -partitions are restored — the same placement the
// livefleet router uses, so a router in front of N such shards finds
// every account. -creds writes the restored "address password" lines
// for the load generator.
//
// With -router, the process serves the partition-aware front instead
// of a shard: it pools connections to the listed shard addresses
// (whose order must match their -partition indices), routes each login
// by account hash, and applies per-connection backpressure. A
// per-shard health prober (-health-interval/-health-timeout) marks
// dead shards down so logins to them fail fast, evicts their pools,
// and flips them back up when they return; backend dials to a down
// shard back off exponentially. The same SIGTERM drain semantics
// apply, and a draining router prints its fleet-health section
// (per-shard dials, retries, evictions, down/up transitions).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/livefleet"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/webmail"
)

type config struct {
	addr     string
	accounts int
	mailbox  int
	seed     int64

	snapshotPath string
	partition    int
	partitions   int
	abuse        bool
	credsOut     string

	routerMode     bool
	shards         string
	healthInterval time.Duration
	healthTimeout  time.Duration

	drainTimeout time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("webmaild", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8025", "listen address")
	fs.IntVar(&cfg.accounts, "accounts", 10, "demo honey accounts to create (ignored with -snapshot)")
	fs.IntVar(&cfg.mailbox, "mailbox", 40, "seeded messages per demo account")
	fs.Int64Var(&cfg.seed, "seed", 1, "demo content seed")
	fs.StringVar(&cfg.snapshotPath, "snapshot", "", "boot the account store from this v4 snapshot file")
	fs.IntVar(&cfg.partition, "partition", 0, "this shard's index (with -snapshot)")
	fs.IntVar(&cfg.partitions, "partitions", 1, "total shards in the fleet (with -snapshot)")
	fs.BoolVar(&cfg.abuse, "abuse", true, "enforce send-rate abuse detection (the virtual clock is static, so the window never slides)")
	fs.StringVar(&cfg.credsOut, "creds", "", "write restored account credentials to this file")
	fs.BoolVar(&cfg.routerMode, "router", false, "serve as the fleet router instead of a shard")
	fs.StringVar(&cfg.shards, "shards", "", "comma-separated shard addresses, in partition order (with -router)")
	fs.DurationVar(&cfg.healthInterval, "health-interval", time.Second, "shard health-probe cadence (with -router); negative disables the prober")
	fs.DurationVar(&cfg.healthTimeout, "health-timeout", time.Second, "per-probe deadline, dial included (with -router)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if cfg.routerMode && cfg.shards == "" {
		return config{}, fmt.Errorf("webmaild: -router requires -shards")
	}
	return cfg, nil
}

// server is the piece an instance drains on shutdown — either a shard
// (*webmail.Server) or the fleet front (*livefleet.Router).
type server interface {
	Drain(ctx context.Context) error
	Close() error
}

// instance is a started webmaild, exposed for the integration tests.
type instance struct {
	Addr   string
	Svc    *webmail.Service  // nil in router mode
	Router *livefleet.Router // nil outside router mode
	srv    server
	cfg    config
	out    io.Writer
}

// startRouter boots the partition-aware front over the given shards.
func startRouter(cfg config, out io.Writer) (*instance, error) {
	router, err := livefleet.NewRouter(livefleet.RouterConfig{
		Shards:         strings.Split(cfg.shards, ","),
		HealthInterval: cfg.healthInterval,
		HealthTimeout:  cfg.healthTimeout,
	})
	if err != nil {
		return nil, err
	}
	bound, err := router.Listen(cfg.addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "webmaild router listening on %s, fronting %d shards\n", bound, router.Shards())
	return &instance{Addr: bound, Router: router, srv: router, cfg: cfg, out: out}, nil
}

// start builds the service (snapshot or demo), begins listening, and
// returns the running instance.
func start(cfg config, out io.Writer) (*instance, error) {
	if cfg.routerMode {
		return startRouter(cfg, out)
	}
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))
	wcfg := webmail.Config{Clock: clock, Abuse: webmail.AbuseConfig{Disabled: !cfg.abuse}}

	var svc *webmail.Service
	var creds []livefleet.Credential
	if cfg.snapshotPath != "" {
		var err error
		svc, creds, err = livefleet.BootService(cfg.snapshotPath, cfg.partition, cfg.partitions, wcfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "booted %d accounts from %s (shard %d of %d)\n",
			len(creds), cfg.snapshotPath, cfg.partition, cfg.partitions)
	} else {
		svc = webmail.NewService(wcfg)
		src := rng.New(cfg.seed)
		personas := corpus.NewPersonas(src.ForkNamed("personas"), cfg.accounts, "honeymail.example")
		gen := corpus.NewGenerator(src.ForkNamed("corpus"), corpus.DefaultConfig())
		seedStart := clock.Now().Add(-120 * 24 * time.Hour)
		for i, p := range personas {
			password := fmt.Sprintf("hp-%04d", i)
			if err := svc.CreateAccount(p.Email, password, p.FullName()); err != nil {
				return nil, err
			}
			for _, m := range gen.Mailbox(p, cfg.mailbox, seedStart, clock.Now()) {
				folder := webmail.FolderInbox
				if m.From == p.Email {
					folder = webmail.FolderSent
				}
				if _, err := svc.Seed(p.Email, folder, m.From, m.To, m.Subject, m.Body, m.Date); err != nil {
					return nil, err
				}
			}
			creds = append(creds, livefleet.Credential{Address: p.Email, Password: password})
			fmt.Fprintf(out, "account %-45s password %s\n", p.Email, password)
		}
	}
	if cfg.credsOut != "" {
		f, err := os.Create(cfg.credsOut)
		if err != nil {
			return nil, err
		}
		if err := livefleet.WriteCredentials(f, creds); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	srv := webmail.NewServer(svc)
	bound, err := srv.Listen(cfg.addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, "webmaild listening on", bound)
	return &instance{Addr: bound, Svc: svc, srv: srv, cfg: cfg}, nil
}

// Shutdown drains the server gracefully, forcing a close when the
// context (or the configured drain timeout) expires first. A router
// renders its fleet-health section on the way out — the counters are
// final once the drain completes, and the chaos smoke test reads the
// down/up transitions from this output.
func (in *instance) Shutdown(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, in.cfg.drainTimeout)
	defer cancel()
	err := in.srv.Drain(ctx)
	if in.Router != nil && in.out != nil {
		fmt.Fprintln(in.out, report.FleetHealth(in.Router.Stats().Shards))
	}
	return err
}

// Close stops the instance immediately (tests' cleanup path).
func (in *instance) Close() error { return in.srv.Close() }

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	inst, err := start(cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("draining")
	if err := inst.Shutdown(context.Background()); err != nil {
		log.Printf("drain: %v (forced close)", err)
	}
	fmt.Println("shut down")
}
