package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/c3"
)

func TestStartServeReplayShutdown(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-synthetic", "500", "-seed", "9", "-bucket-bits", "10"})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := start(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Store.Len() != 500 {
		t.Fatalf("indexed %d, want 500", inst.Store.Len())
	}

	var out strings.Builder
	rcfg := cfg
	rcfg.replay = true
	rcfg.addr = inst.Addr
	rcfg.queries = 200
	rcfg.conns = 4
	if err := runReplay(rcfg, &out); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Serving latency (live fleet)") ||
		!strings.Contains(out.String(), "achieved ") {
		t.Fatalf("replay output missing sections:\n%s", out.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := inst.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestParseFlagsRejectsEmptyIndex(t *testing.T) {
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("no index source should be rejected")
	}
	if _, err := parseFlags([]string{"-replay"}); err != nil {
		t.Fatalf("-replay needs no index source: %v", err)
	}
}

func TestServeCredsAndVariants(t *testing.T) {
	dir := t.TempDir()
	creds := dir + "/creds.txt"
	if err := os.WriteFile(creds, []byte("alice@example.com pw1\nbob@example.com pw2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-creds", creds, "-variants"})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := start(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if !inst.Store.Contains(c3.Hash("alice@example.com", "pw1")) {
		t.Fatal("creds-file credential missing")
	}
	if !inst.Store.Contains(c3.Hash("alice@example.com", "pw11")) {
		t.Fatal("variant not indexed with -variants")
	}
}
