// Command c3d serves the compromised-credential-checking (C3) index
// over TCP: k-anonymity hash-prefix range queries on the repo's
// newline-JSON wire protocol (docs/WIRE_PROTOCOL.md). The index is
// built at boot from any mix of a honeynet snapshot, an
// "address password" credentials file, and synthetic fleet-scale
// fill, then served read-only. On SIGTERM/SIGINT it drains: the
// listener closes, idle connections drop, and in-flight requests
// finish before the process exits.
//
// Usage:
//
//	c3d -snapshot state.snap [-addr host:port] [-bucket-bits N] [-variants]
//	c3d -creds leaked.txt [-synthetic N] [-seed N]
//	c3d -replay -addr host:port [-queries N] [-conns N] [-qps N] [-timeout D]
//
// With -replay, the process is a deterministic query load generator
// instead of a server: it replays seed-derived range queries against
// -addr, prints the serving-latency section and an "achieved N req/s"
// line, and exits non-zero on any protocol error or timeout — the
// exit code CI's c3-smoke job gates on.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/c3"
	"repro/internal/report"
)

type config struct {
	addr         string
	snapshotPath string
	credsPath    string
	synthetic    int
	seed         int64
	bucketBits   int
	variants     bool
	drainTimeout time.Duration

	replay  bool
	queries int
	conns   int
	qps     float64
	timeout time.Duration
	label   string
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("c3d", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8033", "listen address (serve) or target address (-replay)")
	fs.StringVar(&cfg.snapshotPath, "snapshot", "", "index every decoy credential from this honeynet snapshot file")
	fs.StringVar(&cfg.credsPath, "creds", "", "index an \"address password\" lines file (leakctl/webmaild -creds format)")
	fs.IntVar(&cfg.synthetic, "synthetic", 0, "additionally index N deterministic synthetic credentials")
	fs.Int64Var(&cfg.seed, "seed", 1, "seed for -synthetic credentials and the -replay query plan")
	fs.IntVar(&cfg.bucketBits, "bucket-bits", c3.DefaultBucketBits, "k-anonymity prefix width: queries name one of 2^bits buckets")
	fs.BoolVar(&cfg.variants, "variants", false, "MIGP-style mode: also index deterministic password mutations")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	fs.BoolVar(&cfg.replay, "replay", false, "replay deterministic range queries against -addr instead of serving")
	fs.IntVar(&cfg.queries, "queries", 10000, "total range queries (with -replay)")
	fs.IntVar(&cfg.conns, "conns", 16, "concurrent connections (with -replay)")
	fs.Float64Var(&cfg.qps, "qps", 0, "aggregate offered rate, open-loop; 0 = closed loop (with -replay)")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-query deadline (with -replay)")
	fs.StringVar(&cfg.label, "label", "", "report row label (with -replay)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if !cfg.replay && cfg.snapshotPath == "" && cfg.credsPath == "" && cfg.synthetic == 0 {
		return config{}, fmt.Errorf("c3d: nothing to serve — give -snapshot, -creds and/or -synthetic")
	}
	return cfg, nil
}

// instance is a started c3d server, exposed for the integration tests.
type instance struct {
	Addr  string
	Store *c3.Store
	srv   *c3.Server
	cfg   config
}

// start builds the index from the configured sources and begins
// listening.
func start(cfg config, out io.Writer) (*instance, error) {
	store, err := c3.New(c3.Config{BucketBits: cfg.bucketBits, Variants: cfg.variants})
	if err != nil {
		return nil, err
	}
	if cfg.snapshotPath != "" {
		n, err := c3.BuildFromSnapshotFile(cfg.snapshotPath, store)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "indexed %d credentials from %s\n", n, cfg.snapshotPath)
	}
	if cfg.credsPath != "" {
		n, err := c3.BuildFromCredsFile(cfg.credsPath, store, "creds-file", time.Unix(0, 0))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "indexed %d credentials from %s\n", n, cfg.credsPath)
	}
	if cfg.synthetic > 0 {
		c3.Synthetic(cfg.seed, cfg.synthetic, func(a, p string) {
			store.Add(a, p, "synthetic", time.Unix(0, 0))
		})
		fmt.Fprintf(out, "indexed %d synthetic credentials (seed %d)\n", cfg.synthetic, cfg.seed)
	}
	srv := c3.NewServer(store)
	bound, err := srv.Listen(cfg.addr)
	if err != nil {
		return nil, err
	}
	st := store.Stats()
	fmt.Fprintf(out, "c3d listening on %s: %d entries, %d bucket bits, variants=%v\n",
		bound, st.Credentials, st.BucketBits, st.Variants)
	return &instance{Addr: bound, Store: store, srv: srv, cfg: cfg}, nil
}

// Shutdown drains the server gracefully, forcing a close when the
// drain timeout expires first.
func (in *instance) Shutdown(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, in.cfg.drainTimeout)
	defer cancel()
	return in.srv.Drain(ctx)
}

// Close stops the instance immediately (tests' cleanup path).
func (in *instance) Close() error { return in.srv.Close() }

// runReplay drives the deterministic query replay and prints the
// serving-latency section. The fixed "achieved" line format is parsed
// by scripts/c3_smoke.sh.
func runReplay(cfg config, out io.Writer) error {
	stats, err := c3.Replay(c3.ReplayConfig{
		Addr: cfg.addr, Queries: cfg.queries, Conns: cfg.conns,
		QPS: cfg.qps, Seed: cfg.seed, Timeout: cfg.timeout, Label: cfg.label,
	})
	fmt.Fprint(out, report.ServingLatency([]report.ServingStats{stats}))
	fmt.Fprintf(out, "achieved %.0f req/s (%d requests in %s)\n",
		stats.Throughput(), stats.Requests, stats.Elapsed.Round(time.Millisecond))
	return err
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if cfg.replay {
		if err := runReplay(cfg, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	inst, err := start(cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("draining")
	if err := inst.Shutdown(context.Background()); err != nil {
		log.Printf("drain: %v (forced close)", err)
	}
	fmt.Println("shut down")
}
