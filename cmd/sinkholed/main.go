// Command sinkholed runs the sinkhole mailserver standalone: it
// accepts SMTP-subset sessions on a TCP port, stores every message,
// forwards nothing, and prints each capture to stdout.
//
// Usage:
//
//	sinkholed [-addr host:port]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/sinkhole"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:2525", "listen address")
	flag.Parse()

	store := sinkhole.NewStore(time.Now)
	srv := sinkhole.NewServer(store)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sinkholed listening on", bound)

	// Poll the store and echo new captures.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	seen := 0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			all := store.All()
			for ; seen < len(all); seen++ {
				m := all[seen]
				fmt.Printf("captured %s -> %s %q (%d bytes)\n", m.From, m.To, m.Subject, len(m.Body))
			}
		case <-stop:
			fmt.Printf("shutting down; %d messages captured, 0 delivered\n", store.Count())
			srv.Close()
			return
		}
	}
}
