// Command sinkholed runs the sinkhole mailserver standalone: it
// accepts SMTP-subset sessions on a TCP port, stores every message,
// forwards nothing, and prints each capture to stdout. On
// SIGTERM/SIGINT it drains gracefully: in-flight SMTP commands
// (including an open DATA payload) finish before the process exits.
//
// Usage:
//
//	sinkholed [-addr host:port] [-drain-timeout D]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sinkhole"
)

type config struct {
	addr         string
	drainTimeout time.Duration
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("sinkholed", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:2525", "listen address")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight sessions on shutdown")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return cfg, nil
}

// instance is a started sinkholed, exposed for the integration tests.
type instance struct {
	Addr  string
	Store *sinkhole.Store
	srv   *sinkhole.Server
	cfg   config
}

func start(cfg config, out io.Writer) (*instance, error) {
	store := sinkhole.NewStore(time.Now)
	srv := sinkhole.NewServer(store)
	bound, err := srv.Listen(cfg.addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(out, "sinkholed listening on", bound)
	return &instance{Addr: bound, Store: store, srv: srv, cfg: cfg}, nil
}

// Shutdown drains the server gracefully under the configured timeout.
func (in *instance) Shutdown(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, in.cfg.drainTimeout)
	defer cancel()
	return in.srv.Drain(ctx)
}

// Close stops the instance immediately (tests' cleanup path).
func (in *instance) Close() error { return in.srv.Close() }

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	inst, err := start(cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Poll the store and echo new captures until shutdown.
	seen := 0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			all := inst.Store.All()
			for ; seen < len(all); seen++ {
				m := all[seen]
				fmt.Printf("captured %s -> %s %q (%d bytes)\n", m.From, m.To, m.Subject, len(m.Body))
			}
		case <-stop:
			fmt.Println("draining")
			if err := inst.Shutdown(context.Background()); err != nil {
				log.Printf("drain: %v (forced close)", err)
			}
			fmt.Printf("shut down; %d messages captured, 0 delivered\n", inst.Store.Count())
			return
		}
	}
}
