package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/sinkhole"
)

func startT(t *testing.T) *instance {
	t.Helper()
	inst, err := start(config{addr: "127.0.0.1:0", drainTimeout: 10 * time.Second}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	return inst
}

// TestCaptureOverWire: a full SMTP-subset session lands in the store.
func TestCaptureOverWire(t *testing.T) {
	inst := startT(t)
	if err := sinkhole.Send(inst.Addr, "spam@evil.example", "victim@victims.example", "offer", "click here"); err != nil {
		t.Fatal(err)
	}
	mails := inst.Store.ByRecipient("victim@victims.example")
	if len(mails) != 1 || mails[0].Subject != "offer" {
		t.Fatalf("captured %+v", mails)
	}
}

// TestConcurrentSMTPClients: parallel senders, all captured, no races.
func TestConcurrentSMTPClients(t *testing.T) {
	inst := startT(t)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			to := fmt.Sprintf("v%02d@victims.example", i)
			if err := sinkhole.Send(inst.Addr, "spam@evil.example", to, "bulk", "body"); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := inst.Store.Count(); got != n {
		t.Fatalf("captured %d of %d", got, n)
	}
}

// TestShutdownDrains: an idle session drops, new connections are
// refused, and Shutdown returns cleanly.
func TestShutdownDrains(t *testing.T) {
	inst := startT(t)
	conn, err := net.DialTimeout("tcp", inst.Addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Consume the greeting so the session is established and idle.
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := inst.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The idle session is gone: the next read hits EOF/reset.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle session survived drain")
	}
	if err := sinkhole.Send(inst.Addr, "a@x", "b@y", "s", "b"); err == nil {
		t.Fatal("send after shutdown succeeded")
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:1234", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:1234" || cfg.drainTimeout != 5*time.Second {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
