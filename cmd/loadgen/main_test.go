package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/livefleet"
	"repro/internal/simtime"
	"repro/internal/snapshot"
	"repro/internal/webmail"
)

// startFleet boots a 2-shard fleet behind a router from a fresh
// snapshot and returns the router address plus a credential file in
// the format -creds consumes.
func startFleet(t *testing.T, accounts int) (string, string) {
	t.Helper()
	st := &snapshot.State{}
	base := time.Date(2015, 5, 26, 0, 0, 0, 0, time.UTC)
	for i := 0; i < accounts; i++ {
		addr := fmt.Sprintf("load%03d@honeymail.example", i)
		st.Accounts = append(st.Accounts, snapshot.Account{
			Address: addr, Password: fmt.Sprintf("lp-%03d", i), Owner: "Owner",
			SendFrom: addr, NextID: 4,
			Messages: []snapshot.Message{
				{ID: 1, Folder: "inbox", From: "bank@bank.example", To: addr, Subject: "Your statement and payment summary", Body: "wire transfer details inside", DateNS: base.UnixNano()},
				{ID: 2, Folder: "inbox", From: "kin@family.example", To: addr, Subject: "family photos", Body: "see attached", DateNS: base.Add(time.Hour).UnixNano(), Read: true},
				{ID: 3, Folder: "sent", From: addr, To: "kin@family.example", Subject: "re: family photos", Body: "lovely", DateNS: base.Add(2 * time.Hour).UnixNano()},
			},
		})
	}
	snapPath := filepath.Join(t.TempDir(), "fleet.snap")
	if err := st.WriteFile(snapPath); err != nil {
		t.Fatal(err)
	}

	const parts = 2
	addrs := make([]string, parts)
	var creds []livefleet.Credential
	for i := 0; i < parts; i++ {
		svc, cs, err := livefleet.BootService(snapPath, i, parts, webmail.Config{
			Clock: simtime.NewClock(base.Add(30 * 24 * time.Hour)),
			Abuse: webmail.AbuseConfig{Disabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		creds = append(creds, cs...)
		srv := webmail.NewServer(svc)
		addrs[i], err = srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
	}
	router, err := livefleet.NewRouter(livefleet.RouterConfig{Shards: addrs, PoolSize: 4, MaxInFlight: 128})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	credsPath := filepath.Join(t.TempDir(), "creds.txt")
	f, err := os.Create(credsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := livefleet.WriteCredentials(f, creds); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return raddr, credsPath
}

// TestRunAgainstFleet: the full binary path — creds file, plan build,
// replay through the router — finishes with zero faults and renders
// the serving-latency section.
func TestRunAgainstFleet(t *testing.T) {
	raddr, credsPath := startFleet(t, 10)
	var out strings.Builder
	stats, err := run(context.Background(), config{
		addr: raddr, credsPath: credsPath,
		conns: 4, visits: 6, seed: 3, mailbox: 3,
		timeout: 10 * time.Second,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.Timeouts != 0 || stats.Rejected != 0 {
		t.Fatalf("faults under load: errors=%d timeouts=%d rejected=%d\n%s",
			stats.Errors, stats.Timeouts, stats.Rejected, out.String())
	}
	if stats.Requests == 0 || stats.Hist == nil || stats.Hist.Count() != stats.Requests {
		t.Fatalf("stats incomplete: %+v", stats)
	}
	if !strings.Contains(out.String(), "Serving latency") || !strings.Contains(out.String(), "p99") {
		t.Fatalf("missing latency section:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "achieved ") {
		t.Fatalf("missing throughput line:\n%s", out.String())
	}
}

// TestRunMissingCreds: a bad credential path surfaces as an error, not
// a panic or a zero-op run.
func TestRunMissingCreds(t *testing.T) {
	_, err := run(context.Background(), config{
		addr: "127.0.0.1:1", credsPath: filepath.Join(t.TempDir(), "absent.txt"),
		conns: 1, visits: 1, mailbox: 1, timeout: time.Second,
	}, &strings.Builder{})
	if err == nil {
		t.Fatal("missing creds file accepted")
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:8080", "-creds", "x.txt", "-qps", "5000", "-conns", "32"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:8080" || cfg.credsPath != "x.txt" || cfg.qps != 5000 || cfg.conns != 32 {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.tolerateUnavailable {
		t.Fatal("tolerate-unavailable defaults on; strict must be the default")
	}
	tcfg, err := parseFlags([]string{"-addr", "x", "-creds", "y", "-tolerate-unavailable"})
	if err != nil {
		t.Fatal(err)
	}
	if !tcfg.tolerateUnavailable {
		t.Fatalf("parsed %+v", tcfg)
	}
	if _, err := parseFlags([]string{"-addr", "x"}); err == nil {
		t.Fatal("missing -creds accepted")
	}
	if _, err := parseFlags([]string{"-creds", "x"}); err == nil {
		t.Fatal("missing -addr accepted")
	}
}
