// Command loadgen replays deterministic attacker-shaped traffic
// against a webmaild shard or a livefleet router over real sockets
// and prints the serving-latency section (HDR quantiles, achieved
// throughput, fault tallies).
//
// Usage:
//
//	loadgen -addr host:port -creds leak.txt [-qps N] [-conns N]
//	        [-visits N] [-seed N] [-mailbox N] [-timeout D]
//	        [-tolerate-unavailable]
//
// The schedule is fully precomputed from the seed: op mix derived
// from the paper's attacker populations (searches use the gold-digger
// vocabulary, spam uses the spammer templates), per-connection
// account ownership is disjoint, and password changes are resolved at
// plan time — the same seed always sends the same request stream.
// The process exits non-zero if any protocol errors or timeouts
// occurred, which is what lets CI gate on "zero faults under load".
// With -tolerate-unavailable, down-shard refusals from the router
// (shard down / shard unavailable / shard connection lost) are
// tallied separately and do not fail the run — the mode the chaos
// smoke uses to replay through a shard restart while still gating on
// zero router protocol errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/attacker"
	"repro/internal/livefleet"
	"repro/internal/report"
)

type config struct {
	addr                string
	credsPath           string
	qps                 float64
	conns               int
	visits              int
	seed                int64
	mailbox             int
	listLimit           int
	timeout             time.Duration
	label               string
	tolerateUnavailable bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", "", "router or shard address to load (required)")
	fs.StringVar(&cfg.credsPath, "creds", "", "credential file, one 'address password' per line (required)")
	fs.Float64Var(&cfg.qps, "qps", 0, "aggregate request rate target; 0 = closed loop, as fast as possible")
	fs.IntVar(&cfg.conns, "conns", 16, "concurrent connections (also the account-ownership stripes)")
	fs.IntVar(&cfg.visits, "visits", 50, "attacker visits per connection")
	fs.Int64Var(&cfg.seed, "seed", 1, "schedule seed")
	fs.IntVar(&cfg.mailbox, "mailbox", 10, "seeded messages per account (read IDs drawn from this range)")
	fs.IntVar(&cfg.listLimit, "list-limit", 25, "newest-N bound on list responses (0 = whole folder)")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request deadline")
	fs.StringVar(&cfg.label, "label", "", "run label in the report (default derived)")
	fs.BoolVar(&cfg.tolerateUnavailable, "tolerate-unavailable", false,
		"treat down-shard refusals (shard down/unavailable/connection lost) as expected: tally them separately and keep the zero-fault exit code")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if cfg.addr == "" || cfg.credsPath == "" {
		return config{}, fmt.Errorf("loadgen: -addr and -creds are required")
	}
	return cfg, nil
}

// run executes one load-generation pass and returns the stats; split
// from main for the integration tests.
func run(ctx context.Context, cfg config, out io.Writer) (report.ServingStats, error) {
	f, err := os.Open(cfg.credsPath)
	if err != nil {
		return report.ServingStats{}, err
	}
	creds, err := livefleet.ReadCredentials(f)
	f.Close()
	if err != nil {
		return report.ServingStats{}, err
	}
	plan, err := livefleet.BuildPlan(livefleet.PlanConfig{
		Seed:      cfg.seed,
		Workers:   cfg.conns,
		Visits:    cfg.visits,
		Mailbox:   cfg.mailbox,
		ListLimit: cfg.listLimit,
		Creds:     creds,
		Mix:       livefleet.MixFromPopulations(attacker.DefaultPopulations()),
	})
	if err != nil {
		return report.ServingStats{}, err
	}
	label := cfg.label
	if label == "" {
		label = fmt.Sprintf("%d conns, %d ops", cfg.conns, plan.Ops())
	}
	fmt.Fprintf(out, "replaying %d requests over %d connections against %s\n", plan.Ops(), cfg.conns, cfg.addr)
	stats, err := livefleet.Run(ctx, livefleet.RunConfig{
		Addr: cfg.addr, QPS: cfg.qps, Timeout: cfg.timeout, Label: label,
		TolerateUnavailable: cfg.tolerateUnavailable,
	}, plan)
	if err != nil {
		return report.ServingStats{}, err
	}
	fmt.Fprintln(out, report.ServingLatency([]report.ServingStats{stats}))
	// One fixed-format line for scripts; the smoke test's throughput
	// gate parses it rather than the table.
	fmt.Fprintf(out, "achieved %.0f req/s (%d requests in %s)\n",
		stats.Throughput(), stats.Requests, stats.Elapsed.Round(time.Millisecond))
	if cfg.tolerateUnavailable {
		// Fixed format like the achieved line: the chaos smoke parses
		// it to confirm the replay actually crossed the outage.
		fmt.Fprintf(out, "tolerated %d down-shard refusals\n", stats.Unavailable)
	}
	return stats, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stats, err := run(context.Background(), cfg, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if stats.Errors > 0 || stats.Timeouts > 0 {
		log.Fatalf("loadgen: %d protocol errors, %d timeouts", stats.Errors, stats.Timeouts)
	}
}
