// Snapshot/resume invariance: an experiment frozen at its post-setup
// boundary, serialized through the full binary codec, decoded in
// fresh state and resumed must render every table and figure
// byte-identically to the uninterrupted run — determinism guarantee
// #5, alongside the shard/stream/dirty invariance suite. The suite
// covers both stream layouts (legacy root-stream setup and the
// SetupSeed split layout the warm-started matrix uses), resumption at
// the snapshot's own shard count and at different ones, and the
// boundary checks that keep snapshots honest.
package repro

import (
	"testing"
	"time"

	"repro/internal/honeynet"
	"repro/internal/snapshot"
)

func snapshotTestConfig(seed int64, shards int) honeynet.Config {
	cfg := streamTestConfig(seed, shards)
	cfg.Duration = 60 * 24 * time.Hour
	return cfg
}

// coldReport runs an uninterrupted Setup→Leak→Run and renders the
// full report.
func coldReport(t *testing.T, cfg honeynet.Config, seed int64) string {
	t.Helper()
	exp, err := honeynet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		t.Fatal(err)
	}
	return renderStreamReport(t, exp, seed)
}

// resumedReport interrupts the same experiment at the post-setup
// boundary, round-trips it through the codec, resumes with the given
// config and runs to the deadline.
func resumedReport(t *testing.T, setupCfg, resumeCfg honeynet.Config, seed int64) string {
	t.Helper()
	exp, err := honeynet.New(setupCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Setup(); err != nil {
		t.Fatal(err)
	}
	st, err := exp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := snapshot.Decode(st.Encode())
	if err != nil {
		t.Fatalf("snapshot codec round trip: %v", err)
	}
	resumed, err := honeynet.ResumeWith(decoded, resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Leak(); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	return renderStreamReport(t, resumed, seed)
}

// TestSnapshotInvariance is the snapshot engine's acceptance gate:
// save → encode → decode → resume → run-to-deadline renders byte-
// identically to the uninterrupted run, at shard counts 1 and 4, in
// both stream layouts, and even when the resumed experiment uses a
// different shard count than the snapshot was taken at (reports are
// already shard-count invariant; a snapshot must not break that).
func TestSnapshotInvariance(t *testing.T) {
	const seed = 177
	for _, layout := range []struct {
		name      string
		setupSeed int64
	}{
		{"legacy", 0},
		{"split-setup-stream", 9001},
	} {
		t.Run(layout.name, func(t *testing.T) {
			var baseline string
			for _, shards := range []int{1, 4} {
				cfg := snapshotTestConfig(seed, shards)
				cfg.SetupSeed = layout.setupSeed
				cold := coldReport(t, cfg, seed)
				resumed := resumedReport(t, cfg, cfg, seed)
				if cold != resumed {
					t.Fatalf("shards=%d: resumed run differs from uninterrupted run\n%s",
						shards, firstDiff(cold, resumed))
				}
				if baseline == "" {
					baseline = cold
				} else if cold != baseline {
					t.Fatalf("shards=%d: report not shard-count invariant\n%s", shards, firstDiff(baseline, cold))
				}
			}

			// Cross-shard resume: snapshot at 4 shards, resume at 2.
			snapCfg := snapshotTestConfig(seed, 4)
			snapCfg.SetupSeed = layout.setupSeed
			resumeCfg := snapshotTestConfig(seed, 2)
			resumeCfg.SetupSeed = layout.setupSeed
			crossed := resumedReport(t, snapCfg, resumeCfg, seed)
			if crossed != baseline {
				t.Fatalf("snapshot at 4 shards resumed at 2 drifted\n%s", firstDiff(baseline, crossed))
			}
		})
	}
}

// TestSnapshotCadenceFork: scan/scrape cadences are post-fork axes —
// a snapshot resumes under different cadences (the resumed
// experiment re-arms its own trigger chains) and still byte-matches
// the cold run of the same config. Regression test: the drift
// verifier once compared trigger-wheel chains against a snapshot
// taken under different cadences and refused a legitimate fork.
func TestSnapshotCadenceFork(t *testing.T) {
	base := snapshotTestConfig(88, 2)
	base.SetupSeed = 5150
	forkCfg := base
	forkCfg.ScanInterval = 2 * time.Hour
	forkCfg.ScrapeInterval = 6 * time.Hour
	resumed := resumedReport(t, base, forkCfg, 88)
	if cold := coldReport(t, forkCfg, 88); cold != resumed {
		t.Fatalf("cadence-forked resume differs from cold run\n%s", firstDiff(cold, resumed))
	}
}

// TestSnapshotForkDivergence: with the split stream layout, a
// snapshot forks into runs with different experiment seeds — same
// honey accounts, divergent attacker draws. The paper's single fixed
// deployment becomes a family of counterfactual runs over one decoy
// infrastructure.
func TestSnapshotForkDivergence(t *testing.T) {
	base := snapshotTestConfig(300, 2)
	base.SetupSeed = 4242
	exp, err := honeynet.New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Setup(); err != nil {
		t.Fatal(err)
	}
	st, err := exp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	reports := map[int64]string{}
	for _, seed := range []int64{300, 301} {
		cfg := base
		cfg.Seed = seed
		forked, err := honeynet.ResumeWith(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := forked.Leak(); err != nil {
			t.Fatal(err)
		}
		if err := forked.Run(); err != nil {
			t.Fatal(err)
		}
		reports[seed] = renderStreamReport(t, forked, seed)

		// The forked run must byte-match a cold run of the same config.
		if cold := coldReport(t, cfg, seed); cold != reports[seed] {
			t.Fatalf("seed %d: forked run differs from cold run\n%s", seed, firstDiff(cold, reports[seed]))
		}
	}
	if reports[300] == reports[301] {
		t.Fatal("different experiment seeds produced identical runs (fork divergence broken)")
	}
}

// TestSnapshotBoundary: snapshots outside the post-setup boundary and
// resumes against mismatched configs are refused.
func TestSnapshotBoundary(t *testing.T) {
	cfg := snapshotTestConfig(55, 2)
	exp, err := honeynet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Snapshot(); err == nil {
		t.Fatal("Snapshot before Setup accepted")
	}
	if err := exp.Setup(); err != nil {
		t.Fatal(err)
	}
	st, err := exp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Leak(); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Snapshot(); err == nil {
		t.Fatal("Snapshot after Leak accepted")
	}

	// Mismatched setup-relevant config: different mailbox size.
	bad := cfg
	bad.MailboxSize = cfg.MailboxSize + 1
	if _, err := honeynet.ResumeWith(st, bad); err == nil {
		t.Fatal("ResumeWith accepted a config whose setup differs from the snapshot's")
	}
	// Legacy layout pins the seed (setup drew from the root stream).
	bad = cfg
	bad.Seed = cfg.Seed + 1
	if _, err := honeynet.ResumeWith(st, bad); err == nil {
		t.Fatal("ResumeWith accepted a diverged seed under the legacy stream layout")
	}

	// Plain Resume round trip still works and runs.
	resumed, err := honeynet.Resume(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Leak(); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed.SinkholeCount() == 0 && len(resumed.Records()) == 0 {
		t.Fatal("resumed run simulated nothing")
	}
}
