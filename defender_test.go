// Defender-loop invariance: the C3 detection race (time-to-detection
// vs. time-to-exploit) is a new reported axis, so it inherits every
// determinism guarantee the rest of the report carries — byte-
// identical at any shard count, in stream or batch mode, and across a
// snapshot/resume boundary. And when the defender is disabled, the
// subsystem must be invisible: no outcomes, no section, no change to
// any existing byte (the golden corpus pins the latter).
package repro

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/c3"
	"repro/internal/honeynet"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/snapshot"
)

func defenderTestConfig(seed int64, shards int) honeynet.Config {
	cfg := streamTestConfig(seed, shards)
	cfg.DefenderCadence = 12 * time.Hour
	cfg.C3BucketBits = 10
	return cfg
}

// defenderSection renders the detection-race section for an
// experiment, prefixed with the fleet C3 stats so ingest counts are
// part of the compared bytes too.
func defenderSection(t *testing.T, exp *honeynet.Experiment) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(report.Defender(scenario.DefenderRows(exp.DefenderOutcomes())))
	fmt.Fprintf(&b, "indexed=%d\n", exp.C3Stats().Credentials)
	return b.String()
}

// TestDefenderInvariance: detection outcomes and the rendered section
// are identical at shards=1 and shards=4, and identical with the
// streaming pipeline on or off.
func TestDefenderInvariance(t *testing.T) {
	run := func(shards int, batch bool) (*honeynet.Experiment, string) {
		cfg := defenderTestConfig(11, shards)
		cfg.DisableStreaming = batch
		exp, err := honeynet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := exp.RunAll(); err != nil {
			t.Fatal(err)
		}
		return exp, defenderSection(t, exp)
	}
	expOne, one := run(1, false)
	_, four := run(4, false)
	_, batch := run(2, true)
	if one != four {
		t.Errorf("defender section differs between shards=1 and shards=4:\n%s", firstDiff(one, four))
	}
	if one != batch {
		t.Errorf("defender section differs between stream and batch:\n%s", firstDiff(one, batch))
	}
	outcomes := expOne.DefenderOutcomes()
	if len(outcomes) != len(expOne.Assignments()) {
		t.Fatalf("DefenderOutcomes covers %d accounts, fleet has %d", len(outcomes), len(expOne.Assignments()))
	}
	detected := 0
	for _, o := range outcomes {
		if o.Detected {
			detected++
			if o.DetectedAt.Before(o.LeakAt) {
				t.Fatalf("%s detected at %v, before its leak at %v", o.Account, o.DetectedAt, o.LeakAt)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no account was ever detected — the C3 ingestion hooks are dead")
	}
	if st := expOne.C3Stats(); st.Credentials == 0 || st.BucketBits != 10 {
		t.Fatalf("C3Stats = %+v, want >0 credentials at 10 bits", st)
	}
}

// TestDefenderDisabledInvisible: with DefenderCadence zero the
// subsystem must leave no trace — nil outcomes, zero stats, and (via
// the golden corpus, which predates the feature) unchanged report
// bytes. The scenario renderer must add its section exactly when the
// spec arms the loop.
func TestDefenderDisabledInvisible(t *testing.T) {
	exp, err := honeynet.New(streamTestConfig(11, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		t.Fatal(err)
	}
	if exp.DefenderEnabled() {
		t.Fatal("defender enabled without a cadence")
	}
	if out := exp.DefenderOutcomes(); out != nil {
		t.Fatalf("disabled defender returned %d outcomes", len(out))
	}
	if st := exp.C3Stats(); st != (c3.Stats{}) {
		t.Fatalf("disabled defender has C3 stats %+v", st)
	}

	base := scenario.Spec{Name: "defender-off", Days: 30}
	armed := scenario.Spec{Name: "defender-on", Days: 30, DefenderCadence: "24h"}
	opts := scenario.Options{BaseSeed: 3, Workers: 2}
	off, err := scenario.RenderFullReport(scenario.Run(base, 3, opts), 50)
	if err != nil {
		t.Fatal(err)
	}
	on, err := scenario.RenderFullReport(scenario.Run(armed, 3, opts), 50)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "===== defender =====") {
		t.Fatal("defender-off scenario rendered a defender section")
	}
	if !strings.Contains(on, "===== defender =====") {
		t.Fatal("defender-on scenario did not render the defender section")
	}
}

// TestDefenderSnapshotRoundTrip: a snapshot taken with the defender
// armed carries one zero cursor per watched account, survives the
// codec, resumes without drift, and the resumed run's detection race
// matches the uninterrupted one byte for byte (guarantee #5 extended
// to the new section).
func TestDefenderSnapshotRoundTrip(t *testing.T) {
	cfg := defenderTestConfig(21, 2)
	cfg.Duration = 45 * 24 * time.Hour

	cold, err := honeynet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := defenderSection(t, cold)

	fresh, err := honeynet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Setup(); err != nil {
		t.Fatal(err)
	}
	st, err := fresh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Defender) != len(fresh.Assignments()) {
		t.Fatalf("snapshot holds %d defender cursors, fleet has %d accounts", len(st.Defender), len(fresh.Assignments()))
	}
	for i, c := range st.Defender {
		if c.LastSeen != 0 {
			t.Fatalf("boundary defender cursor %d has LastSeen %d", i, c.LastSeen)
		}
		if i > 0 && st.Defender[i-1].Account >= c.Account {
			t.Fatalf("defender cursors not strictly account-sorted at %d", i)
		}
	}
	if st.Config.DefenderCadenceNS != int64(cfg.DefenderCadence) || st.Config.C3BucketBits != cfg.C3BucketBits {
		t.Fatalf("snapshot config lost defender knobs: %+v", st.Config)
	}

	decoded, err := snapshot.Decode(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	restoredCfg, err := honeynet.ConfigFromSnapshot(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if restoredCfg.DefenderCadence != cfg.DefenderCadence || restoredCfg.C3BucketBits != cfg.C3BucketBits {
		t.Fatalf("ConfigFromSnapshot lost defender knobs: %+v", restoredCfg)
	}
	resumed, err := honeynet.ResumeWith(decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Leak(); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	if got := defenderSection(t, resumed); got != want {
		t.Errorf("resumed detection race diverged from cold run:\n%s", firstDiff(want, got))
	}
}
