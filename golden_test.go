// Golden-report regression corpus: small-scale, fixed-seed rendered
// reports for the baseline and two scenario presets, committed under
// testdata/golden/ and asserted byte-identical on every run. The
// reports exercise the whole stack — spec loading, the matrix runner,
// streaming aggregation, every renderer — so any change that moves a
// single reported byte (a renderer tweak, an rng reordering, a
// calibration edit) shows up as a readable diff against the corpus.
//
// Regenerate intentionally with:
//
//	go test -run TestGoldenReports -update
package repro

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
	"repro/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden corpus instead of asserting against it")

// goldenPresets are the committed scenarios: the baseline plus one
// plan variant and one calibration variant.
var goldenPresets = []string{"baseline", "paste-only", "spam-wave"}

const goldenResamples = 200

// goldenOpts pins the corpus scale: 60-day windows, two shards per
// scenario (exercising the sharded merge), base seed 11.
func goldenOpts() scenario.Options {
	return scenario.Options{BaseSeed: 11, Shards: 2, Scale: 1, Workers: 4, DaysOverride: 60}
}

func goldenMatrix(t *testing.T) []*scenario.Result {
	t.Helper()
	var specs []scenario.Spec
	for _, name := range goldenPresets {
		s, err := scenario.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	results, err := scenario.RunMatrix(specs, goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %s: %v", r.Spec.Name, r.Err)
		}
	}
	return results
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestGoldenReports -update`): %v", path, err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s drifted from the golden corpus\n%s\n(if the change is intentional, regenerate with -update)",
			path, firstDiff(string(want), string(got)))
	}
}

// TestGoldenReports renders the full per-scenario reports and the
// comparative matrix report and holds them byte-identical to the
// committed corpus.
func TestGoldenReports(t *testing.T) {
	results := goldenMatrix(t)
	var cols []report.ScenarioColumn
	for _, r := range results {
		out, err := scenario.RenderFullReport(r, goldenResamples)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, r.Spec.Name+".txt", []byte(out))
		cols = append(cols, report.ScenarioColumn{Name: r.Spec.Name, Agg: r.Agg})
	}
	checkGolden(t, "matrix.txt", []byte(report.Comparative(cols)))
}

// TestGoldenArtifacts holds the canonical JSON artifact encoding to
// the corpus as well — the cross-run diffing format must not drift
// silently either.
func TestGoldenArtifacts(t *testing.T) {
	for _, r := range goldenMatrix(t) {
		art, err := scenario.BuildArtifact(r)
		if err != nil {
			t.Fatal(err)
		}
		data, err := art.Encode()
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, r.Spec.Name+".json", data)
	}
}
