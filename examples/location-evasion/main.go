// Location evasion (§4.5 / Figure 5): leak two paste-site groups — one
// advertising a decoy owner near London, one with bare credentials —
// plus the same pair on forums, then measure median login distances
// from the midpoints and test significance with the two-sample
// Cramér–von Mises test.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
)

func main() {
	exp, err := honeynet.New(honeynet.Config{
		Seed: 11,
		Plan: []honeynet.GroupSpec{
			{ID: 1, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste, no location"},
			{ID: 2, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintUK, Label: "paste, UK decoy"},
			{ID: 2, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintUS, Label: "paste, US decoy"},
			{ID: 3, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintNone, Label: "forum, no location"},
			{ID: 4, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintUK, Label: "forum, UK decoy"},
			{ID: 4, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintUS, Label: "forum, US decoy"},
		},
		Duration:       150 * 24 * time.Hour,
		MailboxSize:    30,
		ScanInterval:   time.Hour,
		ScrapeInterval: 3 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		log.Fatal(err)
	}

	ds := exp.Dataset()
	fmt.Println(report.Figure5("UK/London", analysis.MedianRadii(ds, analysis.HintUK)))
	fmt.Println(report.Figure5("US/Pontiac", analysis.MedianRadii(ds, analysis.HintUS)))
	fmt.Println(report.Significance(analysis.LocationSignificance(ds, 2000, 42)))
	fmt.Println("Paper shape: paste criminals connect nearer the advertised midpoint")
	fmt.Println("(CvM rejects equality); forum criminals barely react (CvM keeps the null).")
}
