// Quickstart: deploy a small honeynet (20 accounts across two
// outlets), run 60 simulated days, and print what the monitoring
// pipeline observed — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
)

func main() {
	exp, err := honeynet.New(honeynet.Config{
		Seed: 1,
		Plan: []honeynet.GroupSpec{
			{ID: 1, Count: 10, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste sites"},
			{ID: 3, Count: 10, Channel: analysis.OutletForum, Hint: analysis.HintNone, Label: "underground forums"},
		},
		Duration:       60 * 24 * time.Hour,
		MailboxSize:    40,
		ScanInterval:   time.Hour,
		ScrapeInterval: 6 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		log.Fatal(err)
	}

	ds := exp.Dataset()
	fmt.Println(report.Overview(analysis.Summarize(ds)))

	cs := analysis.Classify(ds, analysis.ClassifyOptions{Slack: time.Hour})
	fmt.Println(report.Figure2(analysis.ByOutlet(cs)))

	fmt.Println("First ten observed accesses:")
	for i, a := range ds.Accesses {
		if i >= 10 {
			break
		}
		where := a.City
		if where == "" {
			where = "anonymous (Tor/proxy)"
		}
		fmt.Printf("  %s  day %5.1f  %-8s  %s\n",
			a.Cookie, a.First.Sub(a.LeakTime).Hours()/24, a.Outlet, where)
	}
	fmt.Printf("\nSinkholed outbound messages: %d (none delivered to real recipients)\n",
		exp.SinkholeCount())
}
