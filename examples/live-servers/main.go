// Live servers: run the webmail platform and the sinkhole mailserver
// as real TCP services on localhost, then drive an attacker session
// over the wire protocol — login with stolen credentials, search for
// valuables, read a hit, leave a ransom draft, hijack the password —
// and show the sinkhole capturing the outbound blackmail.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/sinkhole"
	"repro/internal/webmail"
)

func main() {
	clock := simtime.NewClock(time.Date(2015, 6, 25, 0, 0, 0, 0, time.UTC))

	// Sinkhole mailserver over TCP.
	sinkStore := sinkhole.NewStore(clock.Now)
	sinkSrv := sinkhole.NewServer(sinkStore)
	sinkAddr, err := sinkSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer sinkSrv.Close()
	fmt.Println("sinkhole listening on", sinkAddr)

	// Webmail platform over TCP, with outbound mail relayed into the
	// sinkhole over its SMTP-subset protocol — two real sockets.
	outbound := webmail.OutboundFunc(func(from, to, subject, body string, at time.Time) error {
		return sinkhole.Send(sinkAddr, from, to, subject, body)
	})
	svc := webmail.NewService(webmail.Config{Clock: clock, Outbound: outbound})
	if err := svc.CreateAccount("mary.walker@honeymail.example", "hp-c0ffee11", "Mary Walker"); err != nil {
		log.Fatal(err)
	}
	svc.SetSendFrom("mary.walker@honeymail.example", "capture@sinkhole.example")
	svc.Seed("mary.walker@honeymail.example", webmail.FolderInbox,
		"treasury@solenix-energy.example", "mary.walker@honeymail.example",
		"Wire transfer confirmation - EC-2210",
		"The wire transfer of $128,500 under contract EC-2210 was released this morning.",
		clock.Now().Add(-24*time.Hour))

	mailSrv := webmail.NewServer(svc)
	mailAddr, err := mailSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mailSrv.Close()
	fmt.Println("webmail  listening on", mailAddr)

	// The attacker's browser: a wire-protocol client connecting from a
	// proxy with a spoofed user agent.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client, err := webmail.Dial(ctx, mailAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	space := netsim.NewAddressSpace(rng.New(9), geo.Default())
	ep := space.OpenProxy()
	resp, err := client.Login("mary.walker@honeymail.example", "hp-c0ffee11", "", ep)
	if err != nil || !resp.OK {
		log.Fatalf("login failed: %v %+v", err, resp)
	}
	fmt.Println("\nattacker logged in, cookie:", resp.Cookie)

	hits, err := client.Do(webmail.Request{Op: "search", Query: "transfer"})
	if err != nil || !hits.OK {
		log.Fatalf("search failed: %v %+v", err, hits)
	}
	fmt.Printf("search 'transfer' -> %d hit(s)\n", len(hits.Messages))

	read, err := client.Do(webmail.Request{Op: "read", ID: hits.Messages[0].ID})
	if err != nil || !read.OK {
		log.Fatal("read failed")
	}
	fmt.Println("read:", read.Message.Subject)

	if resp, err := client.Do(webmail.Request{
		Op: "send", To: "member0042@ashley-victims.example",
		Subject: "Payment required",
		Body:    "Send 2 bitcoin to the wallet below or your family finds out.",
	}); err != nil || !resp.OK {
		log.Fatalf("send failed: %v %+v", err, resp)
	}
	if resp, err := client.Do(webmail.Request{Op: "chpass", Password: "owned-now"}); err != nil || !resp.OK {
		log.Fatal("hijack failed")
	}
	fmt.Println("sent blackmail and hijacked the password")

	fmt.Printf("\nsinkhole captured %d message(s):\n", sinkStore.Count())
	for _, m := range sinkStore.All() {
		fmt.Printf("  %s -> %s  %q\n", m.From, m.To, m.Subject)
	}
	fmt.Println("\nNothing was delivered to a real recipient; the envelope sender was")
	fmt.Println("rewritten to the sinkhole address by the platform's send-from override.")
}
