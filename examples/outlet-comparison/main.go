// Outlet comparison (Figures 2–4): run the full Table 1 deployment and
// print the taxonomy mix per outlet, the time-to-access CDFs, and the
// access timeline — including the malware resale bursts around day 30
// and day 100.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
)

func main() {
	exp, err := honeynet.New(honeynet.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Running the full 7-month Table 1 deployment (100 accounts)...")
	start := time.Now()
	if err := exp.RunAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	ds := exp.Dataset()
	cs := analysis.Classify(ds, analysis.ClassifyOptions{})

	fmt.Println(report.Figure2(analysis.ByOutlet(cs)))
	fmt.Println(report.Figure1(analysis.DurationsByClass(cs)))
	fmt.Println(report.Figure3(analysis.TimeToFirstAccess(ds)))
	fmt.Println(report.Figure4(analysis.Timeline(ds)))

	waves := exp.ResaleWaves()
	fmt.Printf("Malware aggregation/resale waves hit %d accounts (expect bursts ~day 30 and ~day 100)\n", len(waves))

	inq := exp.AllInquiries()
	fmt.Printf("Forum buyer inquiries logged (never answered, per protocol): %d\n", len(inq))
	for i, q := range inq {
		if i >= 3 {
			break
		}
		fmt.Printf("  [%s] %s: %s\n", q.Site.Name, q.From, q.Message)
	}
}
