// Gold-digger keyword inference (§4.6 / Table 2): run a deployment in
// which attackers search for sensitive terms, then use the TF-IDF
// pipeline to recover what they searched for — comparing against the
// ground-truth search logs the simulator keeps (a signal the paper's
// authors did NOT have).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/honeynet"
	"repro/internal/report"
)

func main() {
	exp, err := honeynet.New(honeynet.Config{
		Seed: 7,
		Plan: []honeynet.GroupSpec{
			{ID: 1, Count: 15, Channel: analysis.OutletPaste, Hint: analysis.HintNone, Label: "paste"},
			{ID: 3, Count: 15, Channel: analysis.OutletForum, Hint: analysis.HintNone, Label: "forums"},
		},
		Duration:       120 * 24 * time.Hour,
		MailboxSize:    60,
		ScanInterval:   30 * time.Minute,
		ScrapeInterval: 3 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.RunAll(); err != nil {
		log.Fatal(err)
	}

	ds := exp.Dataset()
	result := analysis.KeywordInference(ds, exp.DropWords())
	fmt.Println(report.Table2(result.TopSearched(10), result.TopCorpus(10)))

	// Ground truth: what did attackers actually type into the search
	// box? (The simulator journals it; a real deployment could not.)
	truth := map[string]int{}
	for _, account := range exp.Service().Accounts() {
		for _, q := range exp.Service().SearchLog(account) {
			truth[q]++
		}
	}
	type kv struct {
		q string
		n int
	}
	var ranked []kv
	for q, n := range truth {
		ranked = append(ranked, kv{q, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].q < ranked[j].q
	})
	fmt.Println("Ground-truth search queries (simulator journal):")
	for i, r := range ranked {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-15s %d\n", r.q, r.n)
	}

	// How well did the inference do? Count overlap of top-10 inferred
	// terms with actually-searched terms.
	inferred := result.TopSearched(10)
	hits := 0
	for _, row := range inferred {
		if truth[row.Term] > 0 {
			hits++
		}
	}
	fmt.Printf("\nInference quality: %d of top-10 inferred terms were actually searched\n", hits)
}
